package cache

import (
	"testing"

	"xmem/internal/core"
	"xmem/internal/mem"
)

// flatMemory is a fixed-latency backing store recording the requests it saw.
type flatMemory struct {
	latency uint64
	reads   int
	writes  int
	log     []mem.Addr
}

func (m *flatMemory) Access(pa mem.Addr, kind mem.AccessKind, at uint64, pc mem.Addr) mem.Result {
	m.log = append(m.log, pa)
	if kind == mem.Writeback {
		m.writes++
		return mem.Done(at)
	}
	m.reads++
	return mem.Done(at + m.latency)
}

func testCache(t *testing.T, size uint64, ways int, policy string) (*Cache, *flatMemory) {
	t.Helper()
	next := &flatMemory{latency: 100}
	c, err := New(Config{Name: "L", SizeBytes: size, Ways: ways, Latency: 4, Policy: policy}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c, next
}

func TestCacheHitMissLatency(t *testing.T) {
	c, next := testCache(t, 4096, 4, "lru")
	done := c.Access(0x1000, mem.Read, 0, 0).Wait()
	if done != 4+100 {
		t.Errorf("miss latency = %d, want 104", done)
	}
	done = c.Access(0x1000, mem.Read, 200, 0).Wait()
	if done != 204 {
		t.Errorf("hit latency = %d, want 204", done)
	}
	st := c.Stats()
	if st.ReadMisses != 1 || st.ReadHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if next.reads != 1 {
		t.Errorf("backing reads = %d, want 1", next.reads)
	}
}

func TestCacheRejectsBadGeometry(t *testing.T) {
	if _, err := New(Config{SizeBytes: 1000, Ways: 4}, &flatMemory{}); err == nil {
		t.Error("odd size accepted")
	}
	if _, err := New(Config{SizeBytes: 4096, Ways: 0}, &flatMemory{}); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(Config{SizeBytes: 4096, Ways: 4, Policy: "mystery"}, &flatMemory{}); err == nil {
		t.Error("unknown policy accepted")
	}
	// 3 sets is not a power of two: 4096 = 3 sets * ... pick 4096/ (64*21)...
	if _, err := New(Config{SizeBytes: 64 * 12, Ways: 4, Policy: "lru"}, &flatMemory{}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	// One set: 256B, 4 ways -> 1 set exactly? 256/64=4 lines /4 ways = 1 set.
	c, _ := testCache(t, 256, 4, "lru")
	addrs := []mem.Addr{0x0000, 0x1000, 0x2000, 0x3000}
	for _, a := range addrs {
		c.Access(a, mem.Read, 0, 0)
	}
	c.Access(0x0000, mem.Read, 10, 0) // refresh line 0
	c.Access(0x4000, mem.Read, 20, 0) // evicts LRU = 0x1000
	if !c.Contains(0x0000) {
		t.Error("refreshed line evicted")
	}
	if c.Contains(0x1000) {
		t.Error("LRU line survived")
	}
	for _, a := range []mem.Addr{0x2000, 0x3000, 0x4000} {
		if !c.Contains(a) {
			t.Errorf("line %#x missing", a)
		}
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c, next := testCache(t, 256, 4, "lru")
	c.Access(0x0000, mem.Write, 0, 0)
	for i := 1; i <= 4; i++ {
		c.Access(mem.Addr(i)<<12, mem.Read, uint64(i*10), 0)
	}
	if next.writes != 1 {
		t.Fatalf("writebacks = %d, want 1", next.writes)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("stat writebacks = %d", got)
	}
	// The written-back address must be the victim's line address.
	found := false
	for _, a := range next.log {
		if a == 0x0000 {
			found = true
		}
	}
	if !found {
		t.Error("victim address not written back")
	}
}

func TestCacheWritebackVictimAddressReconstruction(t *testing.T) {
	// Use a multi-set cache and a high line address to exercise the
	// tag/set reassembly.
	c, next := testCache(t, 8192, 2, "lru") // 64 sets... 8192/64=128 lines /2 = 64 sets
	base := mem.Addr(0xABC000)
	c.Access(base, mem.Write, 0, 0)
	// Two more lines in the same set evict it (same set index bits).
	setStride := mem.Addr(64 * 64) // sets * lineBytes
	c.Access(base+setStride, mem.Read, 1, 0)
	c.Access(base+2*setStride, mem.Read, 2, 0)
	got := mem.Addr(0)
	for _, a := range next.log {
		if a == base {
			got = a
		}
	}
	if got != base {
		t.Fatalf("writeback address = %#x, want %#x", got, base)
	}
}

func TestCacheWriteAllocate(t *testing.T) {
	c, next := testCache(t, 4096, 4, "lru")
	c.Access(0x2000, mem.Write, 0, 0)
	if next.reads != 1 {
		t.Errorf("write miss did not fetch line (reads=%d)", next.reads)
	}
	if !c.Contains(0x2000) {
		t.Error("write miss did not allocate")
	}
	// A subsequent read hits.
	c.Access(0x2000, mem.Read, 100, 0)
	if c.Stats().ReadHits != 1 {
		t.Error("read after write-allocate missed")
	}
}

func TestCacheWritebackMissForwards(t *testing.T) {
	c, next := testCache(t, 4096, 4, "lru")
	c.Access(0x9000, mem.Writeback, 0, 0)
	if next.writes != 1 {
		t.Errorf("forwarded writebacks = %d, want 1", next.writes)
	}
	if c.Contains(0x9000) {
		t.Error("writeback miss allocated a line")
	}
}

func TestCacheWritebackHitMarksDirty(t *testing.T) {
	c, next := testCache(t, 256, 4, "lru")
	c.Access(0x0000, mem.Read, 0, 0)
	c.Access(0x0000, mem.Writeback, 1, 0) // upper-level dirty eviction lands here
	for i := 1; i <= 4; i++ {
		c.Access(mem.Addr(i)<<12, mem.Read, uint64(i*10), 0)
	}
	if next.writes != 1 {
		t.Errorf("dirty line from writeback hit not written back (writes=%d)", next.writes)
	}
}

func TestCachePrefetchFillAndDelayedHit(t *testing.T) {
	c, _ := testCache(t, 4096, 4, "lru")
	c.Access(0x3000, mem.Prefetch, 0, 0) // fill completes at cycle 104
	if c.Stats().PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d", c.Stats().PrefetchFills)
	}
	// Demand read at cycle 10 hits the in-flight line: done at fill time.
	done := c.Access(0x3000, mem.Read, 10, 0).Wait()
	if done != 104 {
		t.Errorf("delayed hit done = %d, want 104", done)
	}
	if c.Stats().DelayedHits != 1 {
		t.Errorf("delayed hits = %d, want 1", c.Stats().DelayedHits)
	}
	// Demand read after fill time is a normal hit.
	done = c.Access(0x3000, mem.Read, 200, 0).Wait()
	if done != 204 {
		t.Errorf("post-fill hit done = %d, want 204", done)
	}
}

func TestCachePinCapPerSet(t *testing.T) {
	// 4-way, one set, default cap 75% -> 3 pinned ways max.
	c, _ := testCache(t, 256, 4, "drrip")
	c.SetClassifier(func(pa mem.Addr, kind mem.AccessKind) Insertion {
		return Insertion{Pin: true, Atom: 1}
	})
	for i := 0; i < 4; i++ {
		c.Access(mem.Addr(i)<<12, mem.Read, uint64(i), 0)
	}
	if got := c.PinnedLines(); got != 3 {
		t.Fatalf("pinned lines = %d, want 3 (75%% of 4 ways)", got)
	}
	if c.Stats().PinDowngrades != 1 {
		t.Errorf("pin downgrades = %d, want 1", c.Stats().PinDowngrades)
	}
}

func TestCachePinnedSurvivesThrash(t *testing.T) {
	c, _ := testCache(t, 256, 4, "drrip")
	pinNext := true
	c.SetClassifier(func(pa mem.Addr, kind mem.AccessKind) Insertion {
		if pinNext {
			return Insertion{Pin: true, Atom: 7}
		}
		return Insertion{Atom: core.InvalidAtom}
	})
	c.Access(0x0000, mem.Read, 0, 0)
	pinNext = false
	// A long streaming sweep through the same set.
	for i := 1; i <= 64; i++ {
		c.Access(mem.Addr(i)<<12, mem.Read, uint64(i*10), 0)
	}
	if !c.Contains(0x0000) {
		t.Fatal("pinned line evicted by streaming data")
	}
	if c.Stats().PinEvictions != 0 {
		t.Errorf("pin evictions = %d, want 0", c.Stats().PinEvictions)
	}
}

func TestCacheAgePinned(t *testing.T) {
	c, _ := testCache(t, 256, 4, "drrip")
	atom := core.AtomID(3)
	c.SetClassifier(func(pa mem.Addr, kind mem.AccessKind) Insertion {
		return Insertion{Pin: true, Atom: atom}
	})
	c.Access(0x0000, mem.Read, 0, 0)
	c.SetClassifier(nil)

	// Keep function rejects atom 3: the pin is dropped and the line aged.
	c.AgePinned(func(id core.AtomID) bool { return id != 3 })
	if c.PinnedLines() != 0 {
		t.Fatalf("pinned lines after aging = %d", c.PinnedLines())
	}
	// Now a couple of fills evict it (it was aged to distant).
	c.Access(0x1000, mem.Read, 10, 0)
	c.Access(0x2000, mem.Read, 20, 0)
	c.Access(0x3000, mem.Read, 30, 0)
	c.Access(0x4000, mem.Read, 40, 0)
	if c.Contains(0x0000) {
		t.Error("aged line survived subsequent fills in a full set")
	}
}

func TestCacheAgePinnedKeepsKeptAtoms(t *testing.T) {
	c, _ := testCache(t, 256, 4, "drrip")
	which := core.AtomID(1)
	c.SetClassifier(func(pa mem.Addr, kind mem.AccessKind) Insertion {
		return Insertion{Pin: true, Atom: which}
	})
	c.Access(0x0000, mem.Read, 0, 0)
	which = 2
	c.Access(0x1000, mem.Read, 1, 0)
	c.AgePinned(func(id core.AtomID) bool { return id == 2 })
	if got := c.PinnedLines(); got != 1 {
		t.Fatalf("pinned lines = %d, want 1 (atom 2 kept)", got)
	}
}

func TestCacheObserverSeesDemandOnly(t *testing.T) {
	c, _ := testCache(t, 4096, 4, "lru")
	var events int
	var misses int
	c.SetObserver(func(pa, pc mem.Addr, at uint64, miss bool) {
		events++
		if miss {
			misses++
		}
	})
	c.Access(0x1000, mem.Read, 0, 0)      // demand miss
	c.Access(0x1000, mem.Read, 10, 0)     // demand hit
	c.Access(0x5000, mem.Prefetch, 0, 0)  // not observed
	c.Access(0x6000, mem.Writeback, 0, 0) // not observed
	if events != 2 || misses != 1 {
		t.Errorf("observer events = %d (misses %d), want 2 (1)", events, misses)
	}
}

func TestDRRIPScanResistance(t *testing.T) {
	// A small working set reused repeatedly, interleaved with a scan.
	// DRRIP must retain more of the working set than plain LRU.
	run := func(policy string) uint64 {
		next := &flatMemory{latency: 100}
		c := MustNew(Config{Name: "L", SizeBytes: 32 * 1024, Ways: 16, Latency: 4, Policy: policy}, next)
		hot := make([]mem.Addr, 256) // 16KB working set (fits half the cache)
		for i := range hot {
			hot[i] = mem.Addr(i * 64)
		}
		at := uint64(0)
		for round := 0; round < 64; round++ {
			for _, a := range hot {
				c.Access(a, mem.Read, at, 0)
				at += 10
			}
			// Scan through 64KB of one-touch data.
			for i := 0; i < 1024; i++ {
				c.Access(mem.Addr(0x100000+round*0x10000+i*64), mem.Read, at, 0)
				at += 10
			}
		}
		return c.Stats().ReadHits
	}
	lruHits := run("lru")
	drripHits := run("drrip")
	if drripHits <= lruHits {
		t.Errorf("DRRIP hits (%d) <= LRU hits (%d); expected scan resistance", drripHits, lruHits)
	}
}

func TestRRIPVictimAgesUntilFound(t *testing.T) {
	p := NewSRRIP(1, 4)
	all := func(int) bool { return true }
	for w := 0; w < 4; w++ {
		p.Insert(0, w, InsertDefault) // RRPV = 2
	}
	p.Hit(0, 1) // RRPV[1] = 0
	v := p.Victim(0, all)
	if v == 1 {
		t.Errorf("victim = way 1, the most recently hit line")
	}
}

func TestRRIPVictimRespectsEligibility(t *testing.T) {
	p := NewSRRIP(1, 4)
	for w := 0; w < 4; w++ {
		p.Insert(0, w, InsertLow) // all RRPV = 3
	}
	v := p.Victim(0, func(w int) bool { return w == 2 })
	if v != 2 {
		t.Errorf("victim = %d, want the only eligible way 2", v)
	}
}

func TestBRRIPMostlyDistantInsert(t *testing.T) {
	p := NewBRRIP(1, 4).(*rrip)
	distant := 0
	for i := 0; i < brripEpsilon*4; i++ {
		p.Insert(0, 0, InsertDefault)
		if p.rrpv[0] == rripMax {
			distant++
		}
	}
	if distant <= brripEpsilon*3 {
		t.Errorf("BRRIP distant inserts = %d of %d; should dominate", distant, brripEpsilon*4)
	}
	if distant == brripEpsilon*4 {
		t.Error("BRRIP never inserted long; epsilon path unused")
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]func(int, int) Policy{
		"LRU": NewLRU, "SRRIP": NewSRRIP, "BRRIP": NewBRRIP, "DRRIP": NewDRRIP,
	}
	for want, mk := range cases {
		if got := mk(16, 4).Name(); got != want {
			t.Errorf("name = %q, want %q", got, want)
		}
	}
}

func TestCacheMultiLevel(t *testing.T) {
	next := &flatMemory{latency: 200}
	l2 := MustNew(Config{Name: "L2", SizeBytes: 8192, Ways: 8, Latency: 8, Policy: "drrip"}, next)
	l1 := MustNew(Config{Name: "L1", SizeBytes: 1024, Ways: 4, Latency: 4, Policy: "lru"}, l2)

	done := l1.Access(0x4000, mem.Read, 0, 0).Wait()
	if done != 4+8+200 {
		t.Errorf("L1+L2 miss latency = %d, want 212", done)
	}
	// Evict from L1 (16 lines, 4 sets): lines mapping to the same set.
	for i := 1; i <= 4; i++ {
		l1.Access(mem.Addr(0x4000+i*1024), mem.Read, uint64(100*i), 0)
	}
	// 0x4000 now misses L1 but hits L2.
	done = l1.Access(0x4000, mem.Read, 10000, 0).Wait()
	if done != 10000+4+8 {
		t.Errorf("L2 hit latency = %d, want %d", done, 10000+4+8)
	}
}

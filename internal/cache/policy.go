// Package cache implements the set-associative caches of the simulated
// hierarchy, the LRU and DRRIP replacement policies of the paper's baseline
// (Table 3), and the XMem pinning extensions of §5.2: priority insertion for
// pinned atoms, a 75% pinning cap per set, and explicit aging of pinned
// lines when the active-atom set changes.
package cache

// InsertPriority is the abstract insertion class a replacement policy maps
// onto its own state.
type InsertPriority uint8

const (
	// InsertDefault uses the policy's normal insertion decision.
	InsertDefault InsertPriority = iota
	// InsertHigh marks data the controller wants retained (pinned atoms).
	InsertHigh
	// InsertLow marks data expected to have no reuse (streaming/bypass).
	InsertLow
)

// Policy is a per-cache replacement policy. Implementations keep their own
// per-line state indexed by (set*ways + way).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Hit updates state when the line at (set, way) is referenced.
	Hit(set, way int)
	// Insert initializes state for a fill at (set, way).
	Insert(set, way int, pri InsertPriority)
	// Miss notifies the policy of a miss in set (for set dueling).
	Miss(set int)
	// Victim picks the way to evict in set; every way is valid and
	// eligible(way) reports whether it may be chosen. At least one way is
	// always eligible.
	Victim(set int, eligible func(way int) bool) int
	// Age demotes the line at (set, way) so the default policy will evict
	// it soon (used when pinned lines lose their pin, §5.2(3)).
	Age(set, way int)
}

// --- LRU ---

type lru struct {
	ways  int
	stamp []uint64
	clock uint64
}

// NewLRU returns a least-recently-used policy for a cache with the given
// geometry.
func NewLRU(sets, ways int) Policy {
	return &lru{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *lru) Name() string { return "LRU" }

func (p *lru) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

func (p *lru) Hit(set, way int) { p.touch(set, way) }

func (p *lru) Insert(set, way int, pri InsertPriority) {
	switch pri {
	case InsertLow:
		// Insert at LRU position: first eviction candidate.
		p.stamp[set*p.ways+way] = 0
	default:
		p.touch(set, way)
	}
}

func (p *lru) Miss(int) {}

func (p *lru) Victim(set int, eligible func(way int) bool) int {
	best, bestStamp := -1, uint64(0)
	for w := 0; w < p.ways; w++ {
		if !eligible(w) {
			continue
		}
		if s := p.stamp[set*p.ways+w]; best == -1 || s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

func (p *lru) Age(set, way int) { p.stamp[set*p.ways+way] = 0 }

// --- RRIP family ---

const (
	rripBits     = 2
	rripMax      = 1<<rripBits - 1 // 3 = distant re-reference
	rripLong     = rripMax - 1     // 2 = long re-reference (SRRIP insert)
	brripEpsilon = 32              // BRRIP inserts long 1/32 of the time
)

// rrip is the shared machinery for SRRIP, BRRIP, and DRRIP.
type rrip struct {
	name string
	ways int
	rrpv []uint8
	// mode selects the insertion for InsertDefault in a given set:
	// 0 = SRRIP, 1 = BRRIP, 2 = duel (consult PSEL + leader sets).
	mode int
	// set dueling state (DRRIP).
	leader  []int8 // per set: +1 SRRIP leader, -1 BRRIP leader, 0 follower
	psel    int
	pselMax int
	// deterministic counter driving BRRIP's 1/32 long insertions.
	brripCtr uint32
}

// NewSRRIP returns a static re-reference interval prediction policy.
func NewSRRIP(sets, ways int) Policy {
	return newRRIP("SRRIP", sets, ways, 0)
}

// NewBRRIP returns a bimodal RRIP policy.
func NewBRRIP(sets, ways int) Policy {
	return newRRIP("BRRIP", sets, ways, 1)
}

// NewDRRIP returns a dynamic RRIP policy with set dueling between SRRIP and
// BRRIP, the paper's baseline high-performance policy (Table 3, [83]).
func NewDRRIP(sets, ways int) Policy {
	p := newRRIP("DRRIP", sets, ways, 2)
	p.leader = make([]int8, sets)
	// Dedicate up to 32 leader sets per policy, spread through the index
	// space deterministically.
	leaders := 32
	if leaders > sets/2 {
		leaders = sets / 2
	}
	if leaders == 0 {
		leaders = 1
	}
	stride := sets / (2 * leaders)
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < leaders; i++ {
		p.leader[(2*i)*stride%sets] = +1   // SRRIP leader
		p.leader[(2*i+1)*stride%sets] = -1 // BRRIP leader
	}
	p.pselMax = 1024
	p.psel = p.pselMax / 2
	return p
}

func newRRIP(name string, sets, ways, mode int) *rrip {
	rr := &rrip{name: name, ways: ways, rrpv: make([]uint8, sets*ways), mode: mode}
	for i := range rr.rrpv {
		rr.rrpv[i] = rripMax
	}
	return rr
}

func (p *rrip) Name() string { return p.name }

func (p *rrip) Hit(set, way int) { p.rrpv[set*p.ways+way] = 0 }

func (p *rrip) useBRRIP(set int) bool {
	switch p.mode {
	case 0:
		return false
	case 1:
		return true
	default:
		switch p.leader[set] {
		case +1:
			return false
		case -1:
			return true
		default:
			// PSEL high means SRRIP is missing more; follow BRRIP.
			return p.psel > p.pselMax/2
		}
	}
}

func (p *rrip) Insert(set, way int, pri InsertPriority) {
	idx := set*p.ways + way
	switch pri {
	case InsertHigh:
		p.rrpv[idx] = 0
	case InsertLow:
		p.rrpv[idx] = rripMax
	default:
		if p.useBRRIP(set) {
			p.brripCtr++
			if p.brripCtr%brripEpsilon == 0 {
				p.rrpv[idx] = rripLong
			} else {
				p.rrpv[idx] = rripMax
			}
		} else {
			p.rrpv[idx] = rripLong
		}
	}
}

func (p *rrip) Miss(set int) {
	if p.mode != 2 {
		return
	}
	switch p.leader[set] {
	case +1: // SRRIP leader missed: SRRIP looks worse
		if p.psel < p.pselMax {
			p.psel++
		}
	case -1: // BRRIP leader missed
		if p.psel > 0 {
			p.psel--
		}
	}
}

func (p *rrip) Victim(set int, eligible func(way int) bool) int {
	for {
		for w := 0; w < p.ways; w++ {
			if eligible(w) && p.rrpv[set*p.ways+w] == rripMax {
				return w
			}
		}
		// Age every line in the set and rescan.
		aged := false
		for w := 0; w < p.ways; w++ {
			if p.rrpv[set*p.ways+w] < rripMax {
				p.rrpv[set*p.ways+w]++
				aged = true
			}
		}
		if !aged {
			// All lines already distant but ineligible ones block them:
			// pick the first eligible way.
			for w := 0; w < p.ways; w++ {
				if eligible(w) {
					return w
				}
			}
			return 0
		}
	}
}

func (p *rrip) Age(set, way int) { p.rrpv[set*p.ways+way] = rripMax }

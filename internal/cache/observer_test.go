package cache

import (
	"testing"

	"xmem/internal/core"
	"xmem/internal/mem"
)

// pendingMemory is a backing store whose reads stay in flight until the test
// resolves them, for exercising delayed hits and prefetch lead times.
type pendingMemory struct {
	futures []*mem.Future
}

func (m *pendingMemory) Access(pa mem.Addr, kind mem.AccessKind, at uint64, pc mem.Addr) mem.Result {
	if kind == mem.Writeback {
		return mem.Done(at)
	}
	var f *mem.Future
	f = mem.NewFuture(func() { f.Resolve(at + 1000) })
	m.futures = append(m.futures, f)
	return mem.Pending(f)
}

func TestSpanObserverHitAndMiss(t *testing.T) {
	c, _ := testCache(t, 4096, 4, "lru")
	var evs []SpanEvent
	c.SetSpanObserver(func(ev SpanEvent) { evs = append(evs, ev) })

	c.Access(0x1000, mem.Read, 0, 0)
	c.Access(0x1000, mem.Write, 200, 0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	miss, hit := evs[0], evs[1]
	if !miss.Miss || miss.Level != "L" || miss.Kind != mem.Read || miss.At != 0 || miss.Done != 4 {
		t.Errorf("miss event = %+v", miss)
	}
	if miss.Atom != core.InvalidAtom || miss.Pinned || miss.PinDenied || miss.LowPriority {
		t.Errorf("classifier-less miss carries insertion flags: %+v", miss)
	}
	if hit.Miss || hit.Delayed || hit.Kind != mem.Write || hit.At != 200 || hit.Done != 204 {
		t.Errorf("hit event = %+v", hit)
	}

	// Prefetch probes and writebacks are not demand accesses and stay silent.
	evs = nil
	c.Access(0x2000, mem.Prefetch, 300, 0)
	c.Access(0x1000, mem.Writeback, 310, 0)
	if len(evs) != 0 {
		t.Errorf("non-demand kinds fired %d span events", len(evs))
	}
}

// TestSpanObserverPinOutcomes drives the §5.2 insertion outcomes through one
// set: pinned fills until the 75% cap, then a denied pin, plus a
// low-priority (bypass) fill.
func TestSpanObserverPinOutcomes(t *testing.T) {
	// 256B/4-way = one set; cap = 3 pinned ways.
	c, _ := testCache(t, 256, 4, "lru")
	pin := true
	c.SetClassifier(func(pa mem.Addr, kind mem.AccessKind) Insertion {
		if pin {
			return Insertion{Pin: true, Atom: 7}
		}
		return Insertion{Pri: InsertLow, Atom: 8}
	})
	var evs []SpanEvent
	c.SetSpanObserver(func(ev SpanEvent) { evs = append(evs, ev) })

	for i := 0; i < 4; i++ {
		c.Access(mem.Addr(i)<<12, mem.Read, uint64(i*10), 0)
	}
	pin = false
	c.Access(0x8000, mem.Read, 100, 0)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i := 0; i < 3; i++ {
		if !evs[i].Pinned || evs[i].PinDenied || evs[i].Atom != 7 {
			t.Errorf("fill %d = %+v, want pinned", i, evs[i])
		}
	}
	if !evs[3].PinDenied || evs[3].Pinned {
		t.Errorf("capped fill = %+v, want pin denied", evs[3])
	}
	if !evs[4].LowPriority || evs[4].Atom != 8 {
		t.Errorf("bypass fill = %+v, want low priority", evs[4])
	}
}

func TestSpanObserverDelayedHit(t *testing.T) {
	next := &pendingMemory{}
	c := MustNew(Config{Name: "L3", SizeBytes: 4096, Ways: 4, Latency: 4, Policy: "lru"}, next)
	var evs []SpanEvent
	c.SetSpanObserver(func(ev SpanEvent) { evs = append(evs, ev) })
	var useful []uint64
	c.SetUsefulObserver(func(pa mem.Addr, atom core.AtomID, lead uint64) { useful = append(useful, lead) })

	// A prefetch installs the line; its fill stays in flight.
	c.Access(0x1000, mem.Prefetch, 0, 0)
	// A demand read under the in-flight fill: delayed hit, prefetched.
	c.Access(0x1000, mem.Read, 10, 0)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if !ev.Delayed || ev.Miss || !ev.Prefetched {
		t.Errorf("delayed-hit event = %+v", ev)
	}
	if ev.At != 10 || ev.Done != 14 {
		t.Errorf("unresolved delayed hit times = at %d done %d (done falls back to lookup)", ev.At, ev.Done)
	}
	// The lead is unknown while the fill is unresolved.
	if len(useful) != 1 || useful[0] != 0 {
		t.Errorf("useful leads = %v, want [0]", useful)
	}
}

func TestUsefulObserverLead(t *testing.T) {
	next := &pendingMemory{}
	c := MustNew(Config{Name: "L3", SizeBytes: 4096, Ways: 4, Latency: 4, Policy: "lru"}, next)
	var leads []uint64
	c.SetUsefulObserver(func(pa mem.Addr, atom core.AtomID, lead uint64) { leads = append(leads, lead) })
	var evs []SpanEvent
	c.SetSpanObserver(func(ev SpanEvent) { evs = append(evs, ev) })

	c.Access(0x1000, mem.Prefetch, 0, 0)
	next.futures[0].Resolve(50) // the prefetch lands at cycle 50
	c.Access(0x1000, mem.Read, 200, 0)
	if len(leads) != 1 || leads[0] != 150 {
		t.Fatalf("leads = %v, want [150] (landed 150 cycles ahead of demand)", leads)
	}
	if len(evs) != 1 || evs[0].Delayed || !evs[0].Prefetched {
		t.Fatalf("resolved prefetch hit = %+v", evs)
	}
	// Second demand access: the prefetched bit was consumed.
	c.Access(0x1000, mem.Read, 300, 0)
	if len(leads) != 1 {
		t.Errorf("useful fired again on a later hit: %v", leads)
	}
	if len(evs) != 2 || evs[1].Prefetched {
		t.Errorf("second hit still marked prefetched: %+v", evs[1])
	}
}

func TestLatencyObserver(t *testing.T) {
	c, _ := testCache(t, 4096, 4, "lru")
	type obs struct {
		kind   mem.AccessKind
		cycles uint64
	}
	var got []obs
	c.SetLatencyObserver(func(kind mem.AccessKind, cycles uint64) { got = append(got, obs{kind, cycles}) })

	c.Access(0x1000, mem.Read, 0, 0)   // miss: resolved below, not here
	c.Access(0x1000, mem.Read, 200, 0) // hit: 4-cycle lookup
	c.Access(0x1000, mem.Write, 300, 0)
	c.Access(0x2000, mem.Prefetch, 400, 0) // prefetch probes are not demand
	want := []obs{{mem.Read, 4}, {mem.Write, 4}}
	if len(got) != len(want) {
		t.Fatalf("latency observations = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("observation %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

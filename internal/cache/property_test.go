package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmem/internal/mem"
)

// refLRU is an independent, obviously-correct model of a set-associative
// write-allocate LRU cache.
type refLRU struct {
	sets, ways int
	lines      [][]uint64 // per set, MRU first (line indexes)
	dirty      map[uint64]bool
	writebacks []uint64
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{
		sets: sets, ways: ways,
		lines: make([][]uint64, sets),
		dirty: map[uint64]bool{},
	}
}

func (r *refLRU) access(line uint64, write bool) (hit bool) {
	set := int(line) & (r.sets - 1)
	q := r.lines[set]
	for i, l := range q {
		if l == line {
			copy(q[1:i+1], q[:i])
			q[0] = line
			if write {
				r.dirty[line] = true
			}
			return true
		}
	}
	if len(q) == r.ways {
		victim := q[len(q)-1]
		q = q[:len(q)-1]
		if r.dirty[victim] {
			r.writebacks = append(r.writebacks, victim)
			delete(r.dirty, victim)
		}
	}
	r.lines[set] = append([]uint64{line}, q...)
	if write {
		r.dirty[line] = true
	}
	return false
}

func (r *refLRU) contains(line uint64) bool {
	for _, l := range r.lines[int(line)&(r.sets-1)] {
		if l == line {
			return true
		}
	}
	return false
}

// wbRecorder captures writeback line addresses.
type wbRecorder struct{ lines []uint64 }

func (w *wbRecorder) Access(pa mem.Addr, kind mem.AccessKind, at uint64, pc mem.Addr) mem.Result {
	if kind == mem.Writeback {
		w.lines = append(w.lines, mem.LineIndex(pa))
	}
	return mem.Done(at + 1)
}

// TestCacheLRUMatchesReferenceModel drives random access sequences through
// the real cache and the reference model and requires identical hit/miss
// outcomes, residency, and writeback streams.
func TestCacheLRUMatchesReferenceModel(t *testing.T) {
	type op struct {
		Line  uint16 // confined space so sets conflict
		Write bool
	}
	check := func(ops []op) bool {
		rec := &wbRecorder{}
		c := MustNew(Config{Name: "dut", SizeBytes: 4096, Ways: 4, Latency: 1, Policy: "lru"}, rec)
		// 4096/64 = 64 lines / 4 ways = 16 sets.
		ref := newRefLRU(16, 4)
		for i, o := range ops {
			line := uint64(o.Line % 512)
			kind := mem.Read
			if o.Write {
				kind = mem.Write
			}
			wasHit := c.Contains(mem.Addr(line << mem.LineShift))
			c.Access(mem.Addr(line<<mem.LineShift), kind, uint64(i*10), 0)
			refHit := ref.access(line, o.Write)
			if wasHit != refHit {
				return false
			}
		}
		// Final residency agrees.
		for line := uint64(0); line < 512; line++ {
			if c.Contains(mem.Addr(line<<mem.LineShift)) != ref.contains(line) {
				return false
			}
		}
		// Writeback streams agree exactly (same order under LRU).
		if len(rec.lines) != len(ref.writebacks) {
			return false
		}
		for i := range rec.lines {
			if rec.lines[i] != ref.writebacks[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(9)),
		Values:   nil,
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCacheStatsConsistency checks the accounting invariants under random
// traffic: hits+misses equals demand accesses, and evictions never exceed
// fills.
func TestCacheStatsConsistency(t *testing.T) {
	rec := &wbRecorder{}
	c := MustNew(Config{Name: "dut", SizeBytes: 8192, Ways: 8, Latency: 1, Policy: "drrip"}, rec)
	rng := rand.New(rand.NewSource(4))
	var demand uint64
	for i := 0; i < 20000; i++ {
		line := mem.Addr(rng.Intn(1024)) << mem.LineShift
		switch rng.Intn(4) {
		case 0:
			c.Access(line, mem.Write, uint64(i), 0)
			demand++
		case 1:
			c.Access(line, mem.Prefetch, uint64(i), 0)
		default:
			c.Access(line, mem.Read, uint64(i), 0)
			demand++
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != demand {
		t.Errorf("hits %d + misses %d != demand %d", st.Hits, st.Misses, demand)
	}
	fills := st.Misses + st.PrefetchMisses
	if st.Evictions > fills {
		t.Errorf("evictions %d > fills %d", st.Evictions, fills)
	}
	if uint64(len(rec.lines)) != st.Writebacks {
		t.Errorf("recorded writebacks %d != stat %d", len(rec.lines), st.Writebacks)
	}
}

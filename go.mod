module xmem

go 1.22

// Command xmem-sim runs one or more workloads on a single machine
// configuration and dumps the full result: cycles, IPC, per-level cache
// statistics, DRAM row-buffer behaviour, and XMem (AMU/ALB/library)
// counters.
//
// Usage:
//
//	xmem-sim -workload gemm -n 256 -tile 131072 -l3 262144 -system xmem
//	xmem-sim -workload libq -scale 0.3 -alloc xmem -scheme ro:ra:ba:co:ch
//	xmem-sim -workload gemm,2mm,libq -parallel 4
//	xmem-sim -multi -workload gemm,stream,stream -system xmem
//
// Use-case-1 kernels are selected by kernel name (-tile applies); use-case-2
// synthetic workloads by suite name (-scale applies). A comma-separated
// -workload list runs as a deterministic sweep: -parallel N fans the
// workloads over N workers with byte-identical output to a sequential run,
// and -checkpoint/-resume skip already-completed workloads. The metrics and
// span-tracing flags (-metrics, -progress, -atoms-top, -span-sample,
// -span-out) apply to single-workload runs.
//
// With -multi the comma-separated workloads co-run on ONE multi-core
// machine — one core each, private hierarchies, shared memory controller —
// under the bound–weave parallel scheduler (deterministic: byte-identical
// output regardless of GOMAXPROCS). -seq swaps in the serial reference
// scheduler and -weave-window tunes the bound-phase length.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"xmem/internal/dram"
	"xmem/internal/experiments/runner"
	"xmem/internal/obs"
	"xmem/internal/obs/span"
	"xmem/internal/sim"
	"xmem/internal/workload"
)

func main() {
	var (
		name       = flag.String("workload", "gemm", "kernel or synthetic workload name (list: -list)")
		list       = flag.Bool("list", false, "list available workloads and exit")
		n          = flag.Int("n", 256, "kernel matrix dimension")
		tile       = flag.Uint64("tile", 128<<10, "kernel tile size in bytes")
		steps      = flag.Int("steps", 6, "stencil time steps per tile")
		scale      = flag.Float64("scale", 0.3, "synthetic workload scale factor")
		l3         = flag.Uint64("l3", 256<<10, "L3 capacity in bytes")
		system     = flag.String("system", "baseline", "baseline, xmem, or xmem-pref")
		alloc      = flag.String("alloc", "sequential", "frame allocator: sequential, random, xmem")
		scheme     = flag.String("scheme", "ro:ra:ba:co:ch", "DRAM address mapping scheme")
		ideal      = flag.Bool("ideal-rbl", false, "perfect row-buffer locality")
		check      = flag.Bool("check", false, "audit XMem metadata invariants after every op (panics on structural divergence, reports lifecycle misuse)")
		inferSmoke = flag.Bool("infer-smoke", false, "run each workload twice (attributes stripped vs declared) and fail if declaring them made the memory system worse (L3 hit rate down AND cycles up)")
		bwCore     = flag.Float64("bw", 2.1e9, "per-core DRAM bandwidth in bytes/s (0 = full channel bandwidth)")

		metricsOut = flag.String("metrics", "", "write epoch-sampled metrics to this file (.csv, .trace.json/.chrome.json, or schema-v1 .json)")
		epoch      = flag.Uint64("epoch", 0, "metrics/progress epoch in core cycles (0 = 100k default)")
		atomsTop   = flag.Int("atoms-top", 20, "per-atom attribution rows to print (0 = none)")
		progress   = flag.Uint64("progress", 0, "print a heartbeat to stderr every N epochs (0 = off; works without -metrics)")

		spanSample = flag.Uint64("span-sample", 0, "trace 1 in N demand accesses as causal spans (0 = off)")
		spanBuf    = flag.Int("span-buf", 0, "retained-span ring capacity (0 = default)")
		spanOut    = flag.String("span-out", "", "write sampled spans to this file (.trace.json/.chrome.json = Chrome trace, else JSONL; requires -span-sample)")

		multi       = flag.Bool("multi", false, "co-run the comma-separated -workload list on one multi-core machine (one core per workload)")
		seq         = flag.Bool("seq", false, "with -multi: use the serial reference scheduler instead of bound–weave")
		weaveWindow = flag.Uint64("weave-window", 0, "with -multi: bound-phase window in cycles (0 = scheduler quantum)")

		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "workers for a comma-separated -workload sweep (1 = sequential)")
		timeout    = flag.Duration("timeout", 0, "per-workload timeout for sweeps (0 = none)")
		checkpoint = flag.String("checkpoint", "", "directory for the sweep's JSON checkpoint (empty = off)")
		resume     = flag.Bool("resume", false, "restore completed workloads from the checkpoint and run only the rest")
		verbose    = flag.Bool("v", false, "print sweep progress to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Println("use case 1 kernels:  ", strings.Join(workload.KernelNames(), " "))
		fmt.Println("use case 2 workloads:", strings.Join(workload.SuiteNames(), " "))
		fmt.Println("mapping schemes:     ", strings.Join(dram.SchemeNames(), " "))
		return
	}

	baseConfig := func() sim.Config {
		cfg := sim.FastConfig(*l3)
		cfg.Scheme = *scheme
		cfg.Alloc = sim.AllocPolicy(*alloc)
		cfg.AllocSeed = 42
		cfg.IdealRBL = *ideal
		cfg.CheckInvariants = *check
		if *bwCore > 0 {
			cfg = cfg.WithUseCase1Bandwidth(*bwCore)
		}
		switch *system {
		case "baseline":
		case "xmem":
			cfg.XMemCache = true
		case "xmem-pref":
			cfg.XMemPrefetchOnly = true
		default:
			fmt.Fprintf(os.Stderr, "xmem-sim: unknown system %q\n", *system)
			os.Exit(2)
		}
		return cfg
	}

	names := strings.Split(*name, ",")

	if *inferSmoke {
		// Differential validation for inferred annotations (attrinfer):
		// the declared attributes must not mis-steer the XMem policies, so
		// force them on — stripped vs declared is only meaningful when the
		// machine actually consumes the attributes.
		failed := false
		for _, wname := range names {
			w, err := resolveWorkload(wname, *n, *tile, *steps, *scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
				os.Exit(2)
			}
			cfg := baseConfig()
			cfg.XMemCache = true
			cfg.Alloc = sim.AllocXMemPlacement
			r, err := sim.InferSmoke(cfg, w)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(r)
			failed = failed || !r.Pass()
		}
		if failed {
			fmt.Fprintln(os.Stderr, "xmem-sim: infer smoke FAILED: declaring attributes made the memory system worse")
			os.Exit(1)
		}
		return
	}

	if *multi {
		ws := make([]workload.Workload, len(names))
		for i, wname := range names {
			w, err := resolveWorkload(wname, *n, *tile, *steps, *scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
				os.Exit(2)
			}
			ws[i] = w
		}
		cfg := sim.MultiConfig{
			Core:        baseConfig(),
			Parallel:    !*seq,
			WeaveWindow: *weaveWindow,
		}
		res, err := sim.RunMulti(cfg, ws)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
			os.Exit(1)
		}
		printMultiResult(os.Stdout, res)
		return
	}

	if len(names) > 1 {
		if *resume && *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "xmem-sim: -resume requires -checkpoint")
			os.Exit(2)
		}
		var sweepProgress io.Writer
		if *verbose {
			sweepProgress = os.Stderr
		}
		err := runWorkloadSweep(names, baseConfig, runner.Options{
			Parallel:      *parallel,
			Timeout:       *timeout,
			CheckpointDir: *checkpoint,
			Resume:        *resume,
			Progress:      sweepProgress,
		}, func(name string) (workload.Workload, error) {
			return resolveWorkload(name, *n, *tile, *steps, *scale)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	w, err := resolveWorkload(*name, *n, *tile, *steps, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
		os.Exit(2)
	}

	cfg := baseConfig()
	cfg.EpochCycles = *epoch
	if *metricsOut != "" {
		cfg.Metrics = true
		cfg.MetricsOut = *metricsOut
	}
	if *spanOut != "" && *spanSample == 0 {
		fmt.Fprintln(os.Stderr, "xmem-sim: -span-out requires -span-sample")
		os.Exit(2)
	}
	cfg.SpanSample = *spanSample
	cfg.SpanBuffer = *spanBuf
	cfg.SpanOut = *spanOut
	if *progress > 0 {
		every := *progress
		cfg.OnEpoch = func(p sim.EpochProgress) {
			if p.Epoch%every == 0 {
				fmt.Fprintf(os.Stderr, "epoch %6d  cycle %12d  instructions %12d  IPC %.3f\n",
					p.Epoch, p.Cycle, p.Instructions, p.IPC)
			}
		}
	}

	res, err := sim.Run(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
		os.Exit(1)
	}
	printResult(os.Stdout, res)
	if res.Metrics != nil {
		printPerAtom(res, *atomsTop)
	}
	if d := res.Spans; d != nil {
		fmt.Printf("\nspans           %d retained (1-in-%d sampling), %d sampled, %d dropped\n",
			len(d.Spans), d.SampleEvery, d.Sampled, d.Dropped)
	}
	// Validate schema-v1 JSON output right after writing it; the CSV and
	// Chrome-trace forms have no self-describing schema to check.
	if p := *metricsOut; p != "" && !strings.HasSuffix(p, ".csv") &&
		!strings.HasSuffix(p, ".trace.json") && !strings.HasSuffix(p, ".chrome.json") {
		data, err := os.ReadFile(p)
		if err == nil {
			_, err = obs.ValidateJSON(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-sim: metrics output failed validation: %v\n", err)
			os.Exit(1)
		}
	}
	// Same self-check for the JSONL span stream.
	if p := *spanOut; p != "" && !strings.HasSuffix(p, ".trace.json") && !strings.HasSuffix(p, ".chrome.json") {
		data, err := os.ReadFile(p)
		if err == nil {
			_, err = span.ValidateJSONL(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-sim: span output failed validation: %v\n", err)
			os.Exit(1)
		}
	}
}

// runWorkloadSweep runs each named workload as one deterministic sweep
// point and prints the rendered reports in name order, separated by a rule.
// The point result is the rendered text itself, so checkpointed points
// replay byte-identically on -resume.
func runWorkloadSweep(names []string, baseConfig func() sim.Config, opt runner.Options,
	resolve func(name string) (workload.Workload, error)) error {
	var pts []runner.Point[string]
	for _, name := range names {
		name := name
		pts = append(pts, runner.Point[string]{
			Key: name,
			Run: func(*runner.Ctx) (string, error) {
				w, err := resolve(name)
				if err != nil {
					return "", err
				}
				res, err := sim.Run(baseConfig(), w)
				if err != nil {
					return "", err
				}
				var b bytes.Buffer
				printResult(&b, res)
				return b.String(), nil
			},
		})
	}
	outs, err := runner.Run("xmem-sim", pts, opt)
	if err != nil {
		return err
	}
	for i, o := range outs {
		if i > 0 {
			fmt.Println(strings.Repeat("-", 60))
		}
		if o.Err != "" {
			fmt.Printf("workload        %s\nFAILED          %s\n", o.Key, o.Err)
			continue
		}
		fmt.Print(o.Result)
	}
	return runner.FailErr(outs)
}

func resolveWorkload(name string, n int, tile uint64, steps int, scale float64) (workload.Workload, error) {
	for _, k := range workload.AllKernels() {
		if k.Name == name {
			return k.Make(workload.TiledConfig{N: n, TileBytes: tile, Steps: steps}), nil
		}
	}
	for _, spec := range workload.Suite27() {
		if spec.Name == name {
			return workload.Synthetic(spec.Scaled(scale)), nil
		}
	}
	return workload.Workload{}, fmt.Errorf("unknown workload %q (try -list)", name)
}

func printResult(w io.Writer, r sim.Result) {
	fmt.Fprintf(w, "workload        %s\n", r.Workload)
	fmt.Fprintf(w, "cycles          %d\n", r.Cycles)
	fmt.Fprintf(w, "instructions    %d\n", r.Instructions)
	fmt.Fprintf(w, "IPC             %.3f\n", r.IPC)
	fmt.Fprintf(w, "L3 MPKI         %.2f\n", r.L3MPKI)
	fmt.Fprintf(w, "\ncaches          hits      misses    missrate  writebacks\n")
	fmt.Fprintf(w, "  L1D   %12d %10d   %6.2f%%  %10d\n", r.L1D.Hits, r.L1D.Misses, 100*r.L1D.DemandMissRate(), r.L1D.Writebacks)
	fmt.Fprintf(w, "  L2    %12d %10d   %6.2f%%  %10d\n", r.L2.Hits, r.L2.Misses, 100*r.L2.DemandMissRate(), r.L2.Writebacks)
	fmt.Fprintf(w, "  L3    %12d %10d   %6.2f%%  %10d\n", r.L3.Hits, r.L3.Misses, 100*r.L3.DemandMissRate(), r.L3.Writebacks)
	fmt.Fprintf(w, "  L3 prefetch: fills %d, delayed hits %d, pin inserts %d\n",
		r.L3.PrefetchFills, r.L3.DelayedHits, r.L3.PinInserts)
	fmt.Fprintf(w, "\nDRAM            reads %d  writes %d  row-hit %.1f%%\n",
		r.DRAM.Reads, r.DRAM.Writes, 100*r.DRAM.RowHitRate())
	fmt.Fprintf(w, "  read latency  %.0f cycles avg (demand)\n", r.DRAM.AvgDemandReadLatency())
	fmt.Fprintf(w, "  write latency %.0f cycles avg\n", r.DRAM.AvgWriteLatency())
	fmt.Fprintf(w, "\nXMem            ops %d (map %d, activate %d)  lookups %d  ALB hit %.2f%%\n",
		r.Lib.RuntimeOps, r.AMU.MapOps+r.AMU.UnmapOps,
		r.AMU.ActivateOps+r.AMU.DeactivateOps, r.AMU.Lookups, 100*r.ALBHitRate)
	fmt.Fprintf(w, "  instruction overhead %.5f%%\n",
		100*float64(r.Lib.Instructions)/float64(max64(r.Instructions, 1)))
	if len(r.InvariantWarnings) > 0 {
		fmt.Fprintf(w, "\ninvariant audit: %d lifecycle violation(s)\n", len(r.InvariantWarnings))
		for _, warn := range r.InvariantWarnings {
			fmt.Fprintf(w, "  %s\n", warn)
		}
	}
}

// printMultiResult renders a co-run: one row per core, then the shared
// controller's machine-wide counters. In bound–weave mode the skew column
// is the total contention delay the weave phase charged the core.
func printMultiResult(w io.Writer, r sim.MultiResult) {
	scheduler := "sequential"
	if r.Parallel {
		scheduler = "bound-weave"
	}
	fmt.Fprintf(w, "multicore       %d cores, %s scheduler\n", len(r.Cores), scheduler)
	fmt.Fprintf(w, "cycles          %d (slowest core)\n", r.Cycles)
	fmt.Fprintf(w, "\ncore  %-14s %12s %8s %10s %10s %12s\n",
		"workload", "cycles", "IPC", "L3 miss%", "L3 MPKI", "weave skew")
	for i, c := range r.Cores {
		skew := "-"
		if r.WeaveSkew != nil {
			skew = fmt.Sprintf("%d", r.WeaveSkew[i])
		}
		fmt.Fprintf(w, "  %2d  %-14s %12d %8.3f %9.2f%% %10.2f %12s\n",
			i, c.Workload, c.Cycles, c.IPC, 100*c.L3.DemandMissRate(), c.L3MPKI, skew)
	}
	fmt.Fprintf(w, "\nshared DRAM     reads %d  writes %d  row-hit %.1f%%\n",
		r.DRAM.Reads, r.DRAM.Writes, 100*r.DRAM.RowHitRate())
	fmt.Fprintf(w, "  read latency  %.0f cycles avg (demand)\n", r.DRAM.AvgDemandReadLatency())
	if r.RemoteFraction > 0 {
		fmt.Fprintf(w, "  NUMA remote   %.1f%% of accesses\n", 100*r.RemoteFraction)
	}
}

// printPerAtom prints the attribution table: which atoms took the L3 demand
// misses, how their DRAM commands behaved, and what prefetching did for
// them. The coverage line reports the fraction of misses attributed to a
// real atom (the "(unattributed)" row is everything else).
func printPerAtom(r sim.Result, top int) {
	if top == 0 || len(r.PerAtom) == 0 {
		return
	}
	fmt.Printf("\nper-atom attribution (demand-miss order, epoch %d cycles)\n", r.Metrics.EpochCycles)
	fmt.Printf("  %-18s %10s %10s %10s %8s %9s %9s\n",
		"atom", "dmisses", "rowhits", "rowmiss", "pinevic", "pf-issue", "pf-useful")
	var total, attributed uint64
	for i, a := range r.PerAtom {
		total += a.DemandMisses
		if a.Name != obs.UnattributedName {
			attributed += a.DemandMisses
		}
		if i < top {
			name := a.Name
			if name == "" {
				name = fmt.Sprintf("atom-%d", a.ID)
			}
			fmt.Printf("  %-18s %10d %10d %10d %8d %9d %9d\n",
				name, a.DemandMisses, a.RowHits, a.RowMisses,
				a.PinEvictions, a.PrefetchIssued, a.PrefetchUseful)
		}
	}
	if n := len(r.PerAtom); n > top {
		fmt.Printf("  ... %d more (raise -atoms-top)\n", n-top)
	}
	if total > 0 {
		fmt.Printf("  attribution coverage: %.1f%% of %d L3 demand misses\n",
			100*float64(attributed)/float64(total), total)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Command xmem-sim runs a single workload on a single machine configuration
// and dumps the full result: cycles, IPC, per-level cache statistics, DRAM
// row-buffer behaviour, and XMem (AMU/ALB/library) counters.
//
// Usage:
//
//	xmem-sim -workload gemm -n 256 -tile 131072 -l3 262144 -system xmem
//	xmem-sim -workload libq -scale 0.3 -alloc xmem -scheme ro:ra:ba:co:ch
//
// Use-case-1 kernels are selected by kernel name (-tile applies); use-case-2
// synthetic workloads by suite name (-scale applies).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmem/internal/dram"
	"xmem/internal/sim"
	"xmem/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "gemm", "kernel or synthetic workload name (list: -list)")
		list   = flag.Bool("list", false, "list available workloads and exit")
		n      = flag.Int("n", 256, "kernel matrix dimension")
		tile   = flag.Uint64("tile", 128<<10, "kernel tile size in bytes")
		steps  = flag.Int("steps", 6, "stencil time steps per tile")
		scale  = flag.Float64("scale", 0.3, "synthetic workload scale factor")
		l3     = flag.Uint64("l3", 256<<10, "L3 capacity in bytes")
		system = flag.String("system", "baseline", "baseline, xmem, or xmem-pref")
		alloc  = flag.String("alloc", "sequential", "frame allocator: sequential, random, xmem")
		scheme = flag.String("scheme", "ro:ra:ba:co:ch", "DRAM address mapping scheme")
		ideal  = flag.Bool("ideal-rbl", false, "perfect row-buffer locality")
		check  = flag.Bool("check", false, "audit XMem metadata invariants after every op (panics on structural divergence, reports lifecycle misuse)")
		bwCore = flag.Float64("bw", 2.1e9, "per-core DRAM bandwidth in bytes/s (0 = full channel bandwidth)")
	)
	flag.Parse()

	if *list {
		fmt.Println("use case 1 kernels:  ", strings.Join(workload.KernelNames(), " "))
		fmt.Println("use case 2 workloads:", strings.Join(workload.SuiteNames(), " "))
		fmt.Println("mapping schemes:     ", strings.Join(dram.SchemeNames(), " "))
		return
	}

	w, err := resolveWorkload(*name, *n, *tile, *steps, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
		os.Exit(2)
	}

	cfg := sim.FastConfig(*l3)
	cfg.Scheme = *scheme
	cfg.Alloc = sim.AllocPolicy(*alloc)
	cfg.AllocSeed = 42
	cfg.IdealRBL = *ideal
	cfg.CheckInvariants = *check
	if *bwCore > 0 {
		cfg = cfg.WithUseCase1Bandwidth(*bwCore)
	}
	switch *system {
	case "baseline":
	case "xmem":
		cfg.XMemCache = true
	case "xmem-pref":
		cfg.XMemPrefetchOnly = true
	default:
		fmt.Fprintf(os.Stderr, "xmem-sim: unknown system %q\n", *system)
		os.Exit(2)
	}

	res, err := sim.Run(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmem-sim: %v\n", err)
		os.Exit(1)
	}
	printResult(res)
}

func resolveWorkload(name string, n int, tile uint64, steps int, scale float64) (workload.Workload, error) {
	for _, k := range workload.AllKernels() {
		if k.Name == name {
			return k.Make(workload.TiledConfig{N: n, TileBytes: tile, Steps: steps}), nil
		}
	}
	for _, spec := range workload.Suite27() {
		if spec.Name == name {
			return workload.Synthetic(spec.Scaled(scale)), nil
		}
	}
	return workload.Workload{}, fmt.Errorf("unknown workload %q (try -list)", name)
}

func printResult(r sim.Result) {
	fmt.Printf("workload        %s\n", r.Workload)
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("instructions    %d\n", r.Instructions)
	fmt.Printf("IPC             %.3f\n", r.IPC)
	fmt.Printf("L3 MPKI         %.2f\n", r.L3MPKI)
	fmt.Printf("\ncaches          hits      misses    missrate  writebacks\n")
	fmt.Printf("  L1D   %12d %10d   %6.2f%%  %10d\n", r.L1D.Hits, r.L1D.Misses, 100*r.L1D.DemandMissRate(), r.L1D.Writebacks)
	fmt.Printf("  L2    %12d %10d   %6.2f%%  %10d\n", r.L2.Hits, r.L2.Misses, 100*r.L2.DemandMissRate(), r.L2.Writebacks)
	fmt.Printf("  L3    %12d %10d   %6.2f%%  %10d\n", r.L3.Hits, r.L3.Misses, 100*r.L3.DemandMissRate(), r.L3.Writebacks)
	fmt.Printf("  L3 prefetch: fills %d, delayed hits %d, pin inserts %d\n",
		r.L3.PrefetchFills, r.L3.DelayedHits, r.L3.PinInserts)
	fmt.Printf("\nDRAM            reads %d  writes %d  row-hit %.1f%%\n",
		r.DRAM.Reads, r.DRAM.Writes, 100*r.DRAM.RowHitRate())
	fmt.Printf("  read latency  %.0f cycles avg (demand)\n", r.DRAM.AvgDemandReadLatency())
	fmt.Printf("  write latency %.0f cycles avg\n", r.DRAM.AvgWriteLatency())
	fmt.Printf("\nXMem            ops %d (map %d, activate %d)  lookups %d  ALB hit %.2f%%\n",
		r.Lib.RuntimeOps, r.AMU.MapOps+r.AMU.UnmapOps,
		r.AMU.ActivateOps+r.AMU.DeactivateOps, r.AMU.Lookups, 100*r.ALBHitRate)
	fmt.Printf("  instruction overhead %.5f%%\n",
		100*float64(r.Lib.Instructions)/float64(max64(r.Instructions, 1)))
	if len(r.InvariantWarnings) > 0 {
		fmt.Printf("\ninvariant audit: %d lifecycle violation(s)\n", len(r.InvariantWarnings))
		for _, w := range r.InvariantWarnings {
			fmt.Printf("  %s\n", w)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Command xmem-vet statically checks callers of the XMemLib API against the
// Atom contract of the paper: operator calls on AtomIDs no CreateAtom
// produced, unbalanced or mis-dimensioned MAP/UNMAP pairs, ACTIVATE before
// MAP, conflicting attributes for one creation site, and CreateAtom after
// the atom segment has been emitted.
//
// It also proves the hot-path contracts: the allocfree analyzer verifies
// that every //xmem:allocfree function (the AMU lookup path) and everything
// it reaches through the static call graph performs no heap allocation, and
// the statsneutral analyzer verifies that //xmem:statsneutral functions
// (the Peek family and the span-tracer observers) transitively mutate no
// stats, counter, or LRU state. Audited exceptions are written in the
// source as //xmem:alloc-ok / //xmem:stats-ok with a mandatory reason; see
// DESIGN.md, "Hot-path contracts".
//
// Usage:
//
//	xmem-vet [-run analyzer[,analyzer]] [-json] [-fix] [-fix-dry] [-list] [packages]
//
// Package patterns are module-relative: "./..." (everything), "dir/..."
// (a subtree), or an exact directory ("examples/matvec"). With no
// arguments the whole module is checked. -run restricts the run to the
// named analyzers; -list prints every registered analyzer with its
// one-line doc and exits; -json emits findings as the stable xmem-vet/v2
// schema (consumable by xmem-inspect -vet) instead of text. -fix applies
// every machine-applicable suggested fix (attrinfer) in place; -fix-dry
// previews the same edits as a diff without writing anything — empty
// output means a second application would change nothing (idempotency).
// The exit status is 1 when findings are reported (for -fix/-fix-dry:
// when findings remain that no fix resolves), 2 when the module cannot be
// loaded or a flag is invalid.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xmem/internal/analysis"
)

func main() {
	var (
		runFlag    = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonFlag   = flag.Bool("json", false, "emit findings as xmem-vet/v2 JSON on stdout")
		fixFlag    = flag.Bool("fix", false, "apply machine-applicable suggested fixes in place")
		fixDryFlag = flag.Bool("fix-dry", false, "print the suggested-fix diff without writing files")
		listFlag   = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xmem-vet [-run analyzer[,analyzer]] [-json] [-fix] [-fix-dry] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *fixFlag && *fixDryFlag {
		fatal(fmt.Errorf("-fix and -fix-dry are mutually exclusive"))
	}
	if (*fixFlag || *fixDryFlag) && *jsonFlag {
		fatal(fmt.Errorf("-json cannot be combined with -fix/-fix-dry"))
	}

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *runFlag != "" {
		var err error
		analyzers, err = analysis.ByNames(*runFlag)
		if err != nil {
			fatal(err)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	allPkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}
	pkgs := selectPackages(allPkgs, loader.ModulePath(), root, wd, flag.Args())
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages match %v", flag.Args()))
	}

	// The full load stays available as the resolution universe so the
	// interprocedural provers (allocfree, statsneutral) see callee bodies
	// in packages outside the selection.
	findings := analysis.RunScoped(loader.Fset, pkgs, allPkgs, analyzers)

	if *fixFlag || *fixDryFlag {
		plan, err := analysis.PlanFixes(findings)
		if err != nil {
			fatal(err)
		}
		if *fixDryFlag {
			display := func(file string) string {
				if rel, relErr := filepath.Rel(root, file); relErr == nil && !strings.HasPrefix(rel, "..") {
					return filepath.ToSlash(rel)
				}
				return file
			}
			fmt.Print(plan.DiffFixes(display))
		} else {
			if err := plan.WriteFixes(); err != nil {
				fatal(err)
			}
			files := make([]string, 0, len(plan.Files))
			for file := range plan.Files {
				files = append(files, file)
			}
			sort.Strings(files)
			for _, file := range files {
				if rel, relErr := filepath.Rel(root, file); relErr == nil {
					fmt.Printf("fixed %s\n", filepath.ToSlash(rel))
				}
			}
		}
		if plan.Unfixable > 0 {
			fmt.Fprintf(os.Stderr, "xmem-vet: %d finding(s) without a suggested fix remain\n", plan.Unfixable)
			os.Exit(1)
		}
		return
	}

	if *jsonFlag {
		report := analysis.NewVetReport(loader.ModulePath(), root, analyzers, findings)
		if err := report.Write(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xmem-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectPackages filters the loaded packages by the command-line patterns,
// resolved relative to the invocation directory.
func selectPackages(pkgs []*analysis.Package, modPath, root, wd string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := make([]*analysis.Package, 0, len(pkgs))
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.Path, modPath, root, wd, pat) {
				keep = append(keep, pkg)
				break
			}
		}
	}
	return keep
}

// matchPattern reports whether the package import path matches one pattern.
func matchPattern(pkgPath, modPath, root, wd, pat string) bool {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	// Resolve the pattern to an import path.
	var want string
	switch {
	case pat == ".":
		rel, err := filepath.Rel(root, wd)
		if err != nil {
			return false
		}
		want = joinImport(modPath, filepath.ToSlash(rel))
	case strings.HasPrefix(pat, "./"):
		rel, err := filepath.Rel(root, filepath.Join(wd, pat))
		if err != nil {
			return false
		}
		want = joinImport(modPath, filepath.ToSlash(rel))
	case pat == modPath || strings.HasPrefix(pat, modPath+"/"):
		want = pat
	default:
		want = joinImport(modPath, pat)
	}
	if pkgPath == want {
		return true
	}
	return recursive && strings.HasPrefix(pkgPath, want+"/")
}

func joinImport(modPath, rel string) string {
	rel = strings.TrimPrefix(rel, "./")
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + rel
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xmem-vet: %v\n", err)
	os.Exit(2)
}

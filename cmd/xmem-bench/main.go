// Command xmem-bench regenerates the paper's evaluation: one sub-experiment
// per table/figure (Figures 4-8, the §4.2 ALB coverage measurement, and the
// §4.4 overhead analysis).
//
// Usage:
//
//	xmem-bench [-preset mini|fast|paper] [-exp all|fig4|fig5|fig6|fig7|fig8|alb|overhead]
//	           [-kernels gemm,2mm] [-workloads libq,mcf] [-v]
//
// The fast preset (default) runs the full kernel and workload lists at
// 8×-reduced scale; paper approaches Table 3 scale (hours). See
// EXPERIMENTS.md for recorded outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xmem/internal/experiments"
)

func main() {
	var (
		presetName = flag.String("preset", "fast", "scale preset: mini, fast, or paper")
		exp        = flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, fig7, fig8, alb, overhead, hybrid, numa, ablation, corun (the last three are not part of all)")
		kernels    = flag.String("kernels", "", "comma-separated kernel filter for use case 1")
		workloads  = flag.String("workloads", "", "comma-separated workload filter for use case 2")
		verbose    = flag.Bool("v", false, "print per-run progress to stderr")
		jsonPath   = flag.String("json", "", "also write all computed results as JSON to this file")
	)
	flag.Parse()

	preset, ok := experiments.PresetByName(*presetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "xmem-bench: unknown preset %q\n", *presetName)
		os.Exit(2)
	}
	if *kernels != "" {
		preset.UC1Kernels = strings.Split(*kernels, ",")
	}
	if *workloads != "" {
		preset.UC2Workloads = strings.Split(*workloads, ",")
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	out := os.Stdout

	want := func(name string) bool {
		if *exp == "all" {
			return true
		}
		for _, e := range strings.Split(*exp, ",") {
			if e == name {
				return true
			}
		}
		return false
	}
	ran := false
	jsonOut := map[string]interface{}{}

	var fig4 *experiments.Fig4Result
	if want("fig4") || want("fig5") {
		res := experiments.RunFig4(preset, progress)
		fig4 = &res
		if want("fig4") {
			res.Print(out)
			fmt.Fprintln(out)
			jsonOut["fig4"] = res
			ran = true
		}
	}
	if want("fig5") {
		res := experiments.RunFig5(preset, fig4, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["fig5"] = res
		ran = true
	}
	if want("fig6") {
		res := experiments.RunFig6(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["fig6"] = res
		ran = true
	}
	if want("fig7") || want("fig8") {
		res := experiments.RunFig7(preset, progress)
		if want("fig7") {
			res.Print(out)
			fmt.Fprintln(out)
		}
		if want("fig8") {
			res.PrintFig8(out)
			fmt.Fprintln(out)
		}
		jsonOut["fig7"] = res
		ran = true
	}
	if want("alb") {
		res := experiments.RunALB(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["alb"] = res
		ran = true
	}
	if want("overhead") {
		res := experiments.RunOverhead(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["overhead"] = res
		ran = true
	}
	if want("hybrid") {
		res := experiments.RunHybrid(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["hybrid"] = res
		ran = true
	}
	if want("numa") && *exp != "all" {
		res := experiments.RunNuma(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["numa"] = res
		ran = true
	}
	if want("ablation") && *exp != "all" {
		res := experiments.RunAblation(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["ablation"] = res
		ran = true
	}
	if want("corun") && *exp != "all" {
		res := experiments.RunCorun(preset, progress)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["corun"] = res
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "xmem-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}

// Command xmem-bench regenerates the paper's evaluation: one sub-experiment
// per table/figure (Figures 4-8, the §4.2 ALB coverage measurement, and the
// §4.4 overhead analysis).
//
// Usage:
//
//	xmem-bench [-preset mini|fast|paper] [-exp all|fig4|fig5|fig6|fig7|fig8|alb|overhead]
//	           [-kernels gemm,2mm] [-workloads libq,mcf] [-v]
//	           [-parallel N] [-timeout 30s] [-checkpoint dir] [-resume]
//
// Every experiment is a deterministic sweep: -parallel N fans the sweep's
// points over N workers and produces byte-identical report output to a
// sequential run. -checkpoint dir writes a JSON checkpoint per sweep after
// every completed point; -resume restores completed points from it and
// re-runs only failed and missing ones.
//
// The fast preset (default) runs the full kernel and workload lists at
// 8×-reduced scale; paper approaches Table 3 scale (hours). See
// EXPERIMENTS.md for recorded outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"xmem/internal/experiments"
	"xmem/internal/experiments/runner"
	"xmem/internal/obs"
)

func main() {
	var (
		presetName = flag.String("preset", "fast", "scale preset: mini, fast, or paper")
		exp        = flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, fig7, fig8, alb, overhead, hybrid, numa, ablation, corun (the last three are not part of all)")
		kernels    = flag.String("kernels", "", "comma-separated kernel filter for use case 1")
		workloads  = flag.String("workloads", "", "comma-separated workload filter for use case 2")
		verbose    = flag.Bool("v", false, "print per-run progress to stderr")
		jsonPath   = flag.String("json", "", "also write all computed results as JSON to this file")

		multiPar    = flag.Bool("multi-parallel", false, "run the multicore experiments (corun, numa) on the bound–weave parallel scheduler; default is the serial reference scheduler, which produced the committed results")
		weaveWindow = flag.Uint64("weave-window", 0, "with -multi-parallel: bound-phase window in cycles (0 = scheduler quantum)")

		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep workers (1 = sequential; results are identical either way)")
		timeout    = flag.Duration("timeout", 0, "per-point timeout (0 = none); timed-out points are recorded as failed")
		checkpoint = flag.String("checkpoint", "", "directory for per-sweep JSON checkpoints (empty = off)")
		resume     = flag.Bool("resume", false, "restore completed points from the checkpoint directory and run only the rest")
		sweepOut   = flag.String("sweep-metrics", "", "write per-point wall-time metrics (schema-v1 .json or .csv) to this file")
	)
	flag.Parse()

	preset, ok := experiments.PresetByName(*presetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "xmem-bench: unknown preset %q\n", *presetName)
		os.Exit(2)
	}
	if *kernels != "" {
		preset.UC1Kernels = strings.Split(*kernels, ",")
	}
	if *workloads != "" {
		preset.UC2Workloads = strings.Split(*workloads, ",")
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	out := os.Stdout

	var reg *obs.Registry
	if *sweepOut != "" {
		reg = obs.NewRegistry()
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "xmem-bench: -resume requires -checkpoint")
		os.Exit(2)
	}
	opt := runner.Options{
		Parallel:      *parallel,
		Timeout:       *timeout,
		CheckpointDir: *checkpoint,
		Resume:        *resume,
		Progress:      progress,
		Registry:      reg,
	}
	fatal := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-bench: %v\n", err)
			os.Exit(1)
		}
	}

	want := func(name string) bool {
		if *exp == "all" {
			return true
		}
		for _, e := range strings.Split(*exp, ",") {
			if e == name {
				return true
			}
		}
		return false
	}
	ran := false
	jsonOut := map[string]interface{}{}

	var fig4 *experiments.Fig4Result
	if want("fig4") || want("fig5") {
		res, err := experiments.RunFig4Sweep(preset, opt)
		fatal(err)
		fig4 = &res
		if want("fig4") {
			res.Print(out)
			fmt.Fprintln(out)
			jsonOut["fig4"] = res
			ran = true
		}
	}
	if want("fig5") {
		res, err := experiments.RunFig5Sweep(preset, fig4, opt)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["fig5"] = res
		ran = true
	}
	if want("fig6") {
		res, err := experiments.RunFig6Sweep(preset, nil, opt)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["fig6"] = res
		ran = true
	}
	if want("fig7") || want("fig8") {
		res, err := experiments.RunFig7Sweep(preset, opt)
		fatal(err)
		if want("fig7") {
			res.Print(out)
			fmt.Fprintln(out)
		}
		if want("fig8") {
			res.PrintFig8(out)
			fmt.Fprintln(out)
		}
		jsonOut["fig7"] = res
		ran = true
	}
	if want("alb") {
		res, err := experiments.RunALBSweep(preset, opt)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["alb"] = res
		ran = true
	}
	if want("overhead") {
		res, err := experiments.RunOverheadSweep(preset, opt)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["overhead"] = res
		ran = true
	}
	if want("hybrid") {
		res, err := experiments.RunHybridSweep(preset, opt)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["hybrid"] = res
		ran = true
	}
	mode := experiments.MultiMode{Parallel: *multiPar, WeaveWindow: *weaveWindow}
	if want("numa") && *exp != "all" {
		res, err := experiments.RunNumaSweepMode(preset, opt, mode)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["numa"] = res
		ran = true
	}
	if want("ablation") && *exp != "all" {
		res, err := experiments.RunAblationSweep(preset, opt)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["ablation"] = res
		ran = true
	}
	if want("corun") && *exp != "all" {
		res, err := experiments.RunCorunSweepMode(preset, opt, mode)
		fatal(err)
		res.Print(out)
		fmt.Fprintln(out)
		jsonOut["corun"] = res
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "xmem-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmem-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if reg != nil {
		fatal(writeSweepMetrics(reg, *sweepOut))
	}
}

// writeSweepMetrics exports the runner's per-point wall-time counters as a
// single-sample schema-v1 report (or CSV), reusing the obs exporters.
func writeSweepMetrics(reg *obs.Registry, path string) error {
	report := &obs.Report{
		Workload:    "xmem-bench sweeps",
		EpochCycles: 1,
		Counters:    reg.Names(),
		Samples:     []obs.Sample{{Epoch: 0, Cycle: 0, Values: reg.Snapshot()}},
	}
	if err := report.WriteFile(path); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// Command xmem-inspect shows what a program expresses through XMem without
// running a simulation: the atom segment a workload's CREATE sites would be
// summarized into (§3.5.2), its decoded attributes, and the per-component
// translated views (cache / prefetcher / memory-controller PATs, §4.2).
//
// Usage:
//
//	xmem-inspect -workload gemm            # dump gemm's atoms + PATs
//	xmem-inspect -workload libq -segment   # hex-dump the encoded segment
//	xmem-inspect -placement libq -banks 8  # show the §6.2 bank assignment
//	xmem-inspect -validate-metrics m.json  # check a metrics file's schema
//	xmem-inspect -validate-spans s.jsonl   # check a span stream (xmem-sim -span-out)
//	xmem-inspect -vet results_vet.json     # summarize an xmem-vet -json report
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"xmem/internal/analysis"
	"xmem/internal/compress"
	xm "xmem/internal/core"
	"xmem/internal/kernel"
	"xmem/internal/obs"
	"xmem/internal/obs/span"
	"xmem/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "", "workload whose atoms to inspect")
		segment   = flag.Bool("segment", false, "hex-dump the encoded atom segment")
		placement = flag.String("placement", "", "workload whose §6.2 DRAM placement to show")
		banks     = flag.Int("banks", 8, "bank groups for -placement")
		validate  = flag.String("validate-metrics", "", "validate a schema-v1 metrics JSON file (from xmem-sim -metrics)")
		spans     = flag.String("validate-spans", "", "validate a causal span JSONL stream (from xmem-sim -span-out)")
		vet       = flag.String("vet", "", "validate and summarize an xmem-vet/v1 JSON report (from xmem-vet -json)")
	)
	flag.Parse()

	switch {
	case *vet != "":
		summarizeVet(*vet)
	case *name != "":
		atoms, err := declaredAtoms(*name)
		if err != nil {
			fail(err)
		}
		dumpAtoms(atoms, *segment)
	case *placement != "":
		atoms, err := declaredAtoms(*placement)
		if err != nil {
			fail(err)
		}
		dumpPlacement(atoms, *banks)
	case *validate != "":
		validateMetrics(*validate)
	case *spans != "":
		validateSpans(*spans)
	default:
		fmt.Println("available workloads:")
		for _, k := range workload.KernelNames() {
			fmt.Printf("  %s (use case 1)\n", k)
		}
		for _, s := range workload.SuiteNames() {
			fmt.Printf("  %s (use case 2)\n", s)
		}
	}
}

// validateMetrics checks a schema-v1 metrics file and prints a one-line
// summary of what it holds.
func validateMetrics(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	r, err := obs.ValidateJSON(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("%s: valid %s (workload %s, %d counters, %d samples, %d atoms, epoch %d cycles)\n",
		path, r.Schema, r.Workload, len(r.Counters), len(r.Samples), len(r.PerAtom), r.EpochCycles)
}

// validateSpans checks a causal-span JSONL stream and prints a one-line
// summary of what it holds.
func validateSpans(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	d, err := span.ValidateJSONL(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("%s: valid %s (workload %s, 1-in-%d sampling, %d spans, %d dropped)\n",
		path, d.Schema, d.Workload, d.SampleEvery, len(d.Spans), d.Dropped)
}

// summarizeVet validates an xmem-vet report (v2, or legacy v1) and prints
// the per-analyzer finding counts — zero-finding analyzers included, so
// the summary proves which checks ran. v2 findings that carry suggested
// fixes are marked, with the total edit count, so CI logs show how much of
// the report `xmem-vet -fix` would resolve.
func summarizeVet(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	r, err := analysis.ReadVetReport(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	fixable, edits := 0, 0
	for _, f := range r.Findings {
		if len(f.SuggestedFixes) > 0 {
			fixable++
			for _, fix := range f.SuggestedFixes {
				edits += len(fix.Edits)
			}
		}
	}
	fmt.Printf("%s: valid %s (module %s, %d analyzers, %d findings, %d fixable with %d edits)\n",
		path, r.Schema, r.Module, len(r.Analyzers), len(r.Findings), fixable, edits)
	counts := make(map[string]int, len(r.Analyzers))
	for _, f := range r.Findings {
		counts[f.Analyzer]++
	}
	for _, a := range r.Analyzers {
		fmt.Printf("  %-14s %3d finding(s)  %s\n", a.Name, counts[a.Name], a.Doc)
	}
	for _, f := range r.Findings {
		mark := ""
		if len(f.SuggestedFixes) > 0 {
			mark = " [fix available]"
		}
		fmt.Printf("  %s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Col, f.Analyzer, f.Msg, mark)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "xmem-inspect: %v\n", err)
	os.Exit(1)
}

func declaredAtoms(name string) ([]xm.Atom, error) {
	var w workload.Workload
	found := false
	for _, k := range workload.AllKernels() {
		if k.Name == name {
			w = k.Make(workload.TiledConfig{N: 64, TileBytes: 8 << 10})
			found = true
		}
	}
	if !found {
		for _, spec := range workload.Suite27() {
			if spec.Name == name {
				w = workload.Synthetic(spec)
				found = true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	lib := xm.NewLib(nil)
	w.Declare(lib)
	return lib.Atoms(), nil
}

func dumpAtoms(atoms []xm.Atom, hexdump bool) {
	fmt.Printf("atom segment: %d atoms, version %d, %d bytes encoded\n\n",
		len(atoms), xm.SegmentVersion, len(xm.EncodeSegment(atoms)))
	for _, a := range atoms {
		fmt.Printf("  %s\n", a)
	}
	gat := xm.NewGAT()
	gat.LoadAtoms(atoms)
	cpat := xm.TranslateCache(gat)
	ppat := xm.TranslatePrefetch(gat)
	mpat := xm.TranslateMemCtl(gat)
	zpat := compress.Translate(gat)
	fmt.Printf("\ntranslated private attribute tables (§4.2):\n")
	fmt.Printf("  %-4s %-24s %-28s %-28s %-28s %s\n", "id", "name", "cache", "prefetcher", "memctl", "compression")
	for _, a := range atoms {
		c, _ := cpat.Lookup(a.ID)
		p, _ := ppat.Lookup(a.ID)
		m, _ := mpat.Lookup(a.ID)
		fmt.Printf("  %-4d %-24s pin=%-5v bypass=%-5v r=%-3d  pf=%-5v stride=%-4d lines    highRBL=%-5v irr=%-5v i=%-3d  %v\n",
			a.ID, a.Name, c.PinCandidate, c.Bypass, c.Reuse,
			p.Prefetchable, p.StrideLines, m.HighRBL, m.Irregular, m.Intensity,
			zpat.Lookup(a.ID))
	}
	if hexdump {
		fmt.Printf("\n%s", hex.Dump(xm.EncodeSegment(atoms)))
	}
}

func dumpPlacement(atoms []xm.Atom, banks int) {
	p := kernel.NewXMemPlacement(atoms, banks)
	fmt.Printf("§6.2 placement over %d bank groups:\n\n", banks)
	iso := map[xm.AtomID]bool{}
	for _, id := range p.IsolatedAtoms() {
		iso[id] = true
	}
	for _, a := range atoms {
		banks := p.PreferredBanks(a.ID)
		kind := "shared pool"
		if iso[a.ID] {
			kind = "ISOLATED"
		}
		fmt.Printf("  %-24s %-12s banks=%v\n", a.Name, kind, banks)
	}
	fmt.Printf("\nshared pool: %v\n", p.SharedBanks())
}

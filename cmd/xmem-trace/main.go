// Command xmem-trace records, inspects, profiles, and replays memory access
// traces, and explains causal span streams.
//
//	xmem-trace record -workload gemm -n 64 -tile 8192 -o gemm.trc
//	xmem-trace info -i gemm.trc
//	xmem-trace profile -i gemm.trc          # infer atom attributes (§3.5.1 profiling channel)
//	xmem-trace replay -i gemm.trc -l3 262144 -system xmem
//	xmem-trace explain -i gemm.spans.jsonl  # why were the sampled accesses slow?
//
// The profile subcommand is the paper's third expression channel: for code
// that carries no annotations, a profiling run derives the attributes and
// emits the same atom segment the programmer or compiler would have. The
// explain subcommand consumes the JSONL span stream written by
// xmem-sim -span-sample/-span-out and prints, per atom, the slowest causal
// paths with their attribute-tied reason codes.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmem/internal/obs/span"
	"xmem/internal/sim"
	"xmem/internal/trace"
	"xmem/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xmem-trace {record|info|profile|replay|explain} [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "xmem-trace: %v\n", err)
	os.Exit(1)
}

func loadTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		fail(err)
	}
	return t
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "gemm", "workload name")
	n := fs.Int("n", 64, "kernel dimension")
	tile := fs.Uint64("tile", 8192, "kernel tile bytes")
	steps := fs.Int("steps", 4, "stencil steps")
	scale := fs.Float64("scale", 0.05, "synthetic workload scale")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *out == "" {
		fail(fmt.Errorf("record needs -o"))
	}
	w, err := findWorkload(*name, *n, *tile, *steps, *scale)
	if err != nil {
		fail(err)
	}
	t := trace.Record(w)
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		fail(err)
	}
	fmt.Printf("recorded %d events (%d accesses, %d KB footprint) to %s\n",
		len(t.Events), t.Accesses(), t.FootprintBytes()>>10, *out)
}

func findWorkload(name string, n int, tile uint64, steps int, scale float64) (workload.Workload, error) {
	for _, k := range workload.AllKernels() {
		if k.Name == name {
			return k.Make(workload.TiledConfig{N: n, TileBytes: tile, Steps: steps}), nil
		}
	}
	for _, s := range workload.Suite27() {
		if s.Name == name {
			return workload.Synthetic(s.Scaled(scale)), nil
		}
	}
	return workload.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	fs.Parse(args)
	t := loadTrace(*in)
	fmt.Printf("events:    %d\n", len(t.Events))
	fmt.Printf("accesses:  %d\n", t.Accesses())
	fmt.Printf("footprint: %d KB\n", t.FootprintBytes()>>10)
	for _, e := range t.Events {
		if e.Kind == trace.EvMalloc {
			fmt.Printf("region %-16s %8d bytes (atom %d)\n", e.Name, e.Addr, e.Site)
		}
	}
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	fs.Parse(args)
	t := loadTrace(*in)
	p := trace.Analyze(t)
	fmt.Printf("%-20s %10s %8s %10s %8s %6s   %s\n",
		"region", "accesses", "stores", "footprint", "stride", "reg%", "inferred attributes")
	total := p.TotalAccesses()
	for _, r := range p.Regions {
		attrs := r.InferAttributes(total)
		fmt.Printf("%-20s %10d %8d %9dK %8d %5.0f%%   %v\n",
			r.Name, r.Accesses, r.Stores, r.DistinctLines*64/1024,
			r.DominantStride, 100*r.Regularity, attrs)
	}
	fmt.Printf("\nper-site strides:\n")
	for _, s := range p.Sites {
		fmt.Printf("  site %-4d %10d accesses, stride %6d (%.0f%% regular)\n",
			s.Site, s.Accesses, s.DominantStride, 100*s.Regularity)
	}
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	in := fs.String("i", "", "input span JSONL file (from xmem-sim -span-out)")
	top := fs.Int("top", 5, "causal paths to print per atom (0 = all)")
	fs.Parse(args)
	if *in == "" {
		fail(fmt.Errorf("explain needs -i"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	d, err := span.ValidateJSONL(data)
	if err != nil {
		fail(err)
	}
	if err := span.WriteExplain(os.Stdout, d, *top); err != nil {
		fail(err)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	l3 := fs.Uint64("l3", 256<<10, "L3 bytes")
	system := fs.String("system", "baseline", "baseline or xmem")
	fs.Parse(args)
	t := loadTrace(*in)
	cfg := sim.FastConfig(*l3)
	cfg.XMemCache = *system == "xmem"
	res, err := sim.Run(cfg, trace.Replay("replay:"+*in, t))
	if err != nil {
		fail(err)
	}
	fmt.Printf("cycles=%d instructions=%d IPC=%.3f L3MPKI=%.2f rowhit=%.1f%%\n",
		res.Cycles, res.Instructions, res.IPC, res.L3MPKI, 100*res.DRAM.RowHitRate())
}

#!/bin/sh
# bench_multi.sh — record the bound–weave scheduler's speedup envelope.
#
# Runs the 8-core streaming co-run through the top-level benchmarks two
# ways — the serial reference scheduler (BenchmarkCorun8Seq) and the
# bound–weave parallel scheduler (BenchmarkCorun8BoundWeave) — in
# interleaved rounds, and writes BENCH_multi.json: raw ns/op per run,
# medians, the paired speedup, and the host's hardware thread count.
#
# Two gates:
#   - determinism (always): TestBoundWeaveDeterminism must pass right here,
#     so the recorded numbers come from a scheduler whose output is
#     byte-identical across GOMAXPROCS settings;
#   - speedup (>= 8 hardware threads only): the bound–weave median must be
#     >= 3x faster than the serial one. Below 8 threads the bound phase has
#     little parallelism to reclaim its barrier/replay overhead, so the
#     ratio is recorded but not gated (on 1 thread it is typically < 1).
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
GO=${GO:-go}
OUT=${BENCH_MULTI_OUT:-"$ROOT/BENCH_multi.json"}
COUNT=${BENCH_MULTI_COUNT:-5}
BENCHTIME=${BENCH_MULTI_BENCHTIME:-3x}
RAW=$(mktemp /tmp/xmem_bench_multi.XXXXXX)
trap 'rm -f "$RAW"' EXIT

THREADS=1
if command -v nproc >/dev/null 2>&1; then
	THREADS=$(nproc)
fi

echo "== determinism gate: TestBoundWeaveDeterminism"
(cd "$ROOT" && $GO test -run TestBoundWeaveDeterminism -count 1 ./internal/sim/)

echo "== $COUNT rounds of go test -bench 'BenchmarkCorun8' -benchtime $BENCHTIME ($THREADS hardware threads)"
i=0
while [ "$i" -lt "$COUNT" ]; do
	i=$((i + 1))
	echo "== round $i/$COUNT"
	(cd "$ROOT" && $GO test -run xxx \
		-bench 'BenchmarkCorun8' \
		-benchtime "$BENCHTIME" -count 1 .) | tee -a "$RAW"
done

host="unknown"
if [ -r /proc/cpuinfo ]; then
	host=$(awk -F': ' '/^model name/ { print $2; exit }' /proc/cpuinfo)
fi
host="$host, $($GO env GOOS)/$($GO env GOARCH)"

awk -v date="$(date +%F)" -v host="$host" -v threads="$THREADS" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") {
			vals[name] = vals[name] " " $(i - 1)
			n[name]++
		}
	}
}
function median(name,    m, arr, i, tmp, j, t) {
	m = split(vals[name], arr, " ")
	for (i = 2; i <= m; i++) {        # insertion sort: counts are tiny
		t = arr[i] + 0
		for (j = i - 1; j >= 1 && arr[j] + 0 > t; j--) arr[j + 1] = arr[j]
		arr[j + 1] = t
	}
	return arr[int((m + 1) / 2)] + 0
}
function runs(name,    m, arr, i, s) {
	m = split(vals[name], arr, " ")
	s = ""
	for (i = 1; i <= m; i++) s = s (i > 1 ? ", " : "") arr[i]
	return s
}
function block(name, note,    s) {
	s = "    \"" name "\": {\n"
	if (note != "") s = s "      \"note\": \"" note "\",\n"
	s = s "      \"ns_per_op\": [" runs(name) "],\n"
	s = s "      \"median_ns_per_op\": " median(name) "\n    }"
	return s
}
END {
	seq = median("BenchmarkCorun8Seq")
	bw = median("BenchmarkCorun8BoundWeave")
	if (seq == 0 || bw == 0) {
		print "bench_multi: missing benchmark results" > "/dev/stderr"
		exit 1
	}
	speedup = seq / bw
	printf "{\n"
	printf "  \"description\": \"Bound-weave multicore speedup snapshot: an 8-core co-run of DRAM-heavy streaming workloads on the serial reference scheduler vs the bound-weave parallel scheduler (both deterministic; the parallel one byte-identical across GOMAXPROCS, re-verified by this script). The speedup gate (>=3x) applies only on hosts with >=8 hardware threads; below that the bound phase has little parallelism to reclaim its barrier and replay overhead. Regenerate with: make bench-multi.\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"host\": \"%s\",\n", host
	printf "  \"hardware_threads\": %d,\n", threads
	printf "  \"benchmarks\": {\n"
	printf "%s,\n", block("BenchmarkCorun8Seq", "serial reference scheduler")
	printf "%s\n", block("BenchmarkCorun8BoundWeave", "bound-weave parallel scheduler")
	printf "  },\n"
	printf "  \"summary\": {\n"
	printf "    \"speedup_seq_over_boundweave\": %.2f,\n", speedup
	printf "    \"speedup_gate_applied\": %s\n", (threads >= 8 ? "true" : "false")
	printf "  }\n"
	printf "}\n"
	if (threads >= 8 && speedup < 3) {
		printf "bench_multi: bound-weave speedup %.2fx < 3x on %d hardware threads\n", \
			speedup, threads > "/dev/stderr"
		exit 1
	}
}
' "$RAW" > "$OUT"

echo "== wrote $OUT"

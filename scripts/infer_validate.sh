#!/bin/sh
# infer_validate.sh — differential validation of the attrinfer pipeline.
#
# Proves, end to end, that the module's committed annotations are exactly
# what the analyzer derives and that deriving them is safe:
#
#   1. The committed tree is inference-clean: `xmem-vet -run attrinfer
#      -json` over the whole module reports zero findings (the JSON is
#      schema-validated), and `-fix-dry` prints no edits — the tree is a
#      fixed point of the fixer.
#   2. In a scratch copy of the module, examples/inferdemo/main.go is
#      reverted to its preserved pre-fix form; attrinfer must report
#      findings there, `-fix` must resolve ALL of them, the result must be
#      gofmt-clean, and re-running attrinfer AND attrtruth over the fixed
#      scratch module must be silent — the applied inferences contradict
#      nothing the truth analyzer can prove.
#   3. Idempotency: `-fix-dry` on the fixed scratch tree prints no edits.
#   4. Provenance: the fixed scratch example is byte-identical to the
#      committed one, so the committed annotations are machine output.
#   5. Simulator differential: `xmem-sim -infer-smoke` on one tiled kernel
#      and one synthetic, plus the inferdemo example's own -check run —
#      declaring the inferred attributes must not make the memory system
#      worse (L3 hit rate down AND cycles up).
#
# Exits non-zero on the first violated step.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
GO=${GO:-go}
SCRATCH=${INFER_VALIDATE_DIR:-/tmp/xmem_infer_validate}
PREFIX=internal/analysis/testdata/inferdemo_prefix/main.go.txt
EXAMPLE=examples/inferdemo/main.go

step() { printf '== %s\n' "$*"; }

step "committed tree: attrinfer reports zero findings (JSON, schema-checked)"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
(cd "$ROOT" && $GO run ./cmd/xmem-vet -run attrinfer -json ./...) \
	> "$SCRATCH/results_vet_infer.json"
(cd "$ROOT" && $GO run ./cmd/xmem-inspect -vet "$SCRATCH/results_vet_infer.json")

step "committed tree: -fix-dry prints no edits (tree is a fixed point)"
dry=$(cd "$ROOT" && $GO run ./cmd/xmem-vet -run attrinfer -fix-dry ./...)
if [ -n "$dry" ]; then
	echo "infer-validate: committed tree is not a fixer fixed point:" >&2
	printf '%s\n' "$dry" >&2
	exit 1
fi

step "scratch copy with pre-fix example"
(cd "$ROOT" && tar --exclude=.git -cf - .) | tar -xf - -C "$SCRATCH"
cp "$ROOT/$PREFIX" "$SCRATCH/$EXAMPLE"

step "pre-fix example: attrinfer must report findings"
set +e
(cd "$SCRATCH" && $GO run ./cmd/xmem-vet -run attrinfer examples/inferdemo) \
	> "$SCRATCH/prefix_findings.txt" 2>/dev/null
status=$?
set -e
if [ "$status" -ne 1 ] || [ ! -s "$SCRATCH/prefix_findings.txt" ]; then
	echo "infer-validate: expected findings on the pre-fix example (exit 1), got exit $status" >&2
	exit 1
fi
sed 's/^/   /' "$SCRATCH/prefix_findings.txt"

step "apply fixes: every finding must have a machine-applicable fix"
(cd "$SCRATCH" && $GO run ./cmd/xmem-vet -run attrinfer -fix examples/inferdemo)

step "fixed example is gofmt-clean"
fmt=$(gofmt -l "$SCRATCH/examples/inferdemo")
if [ -n "$fmt" ]; then
	echo "infer-validate: gofmt needed on: $fmt" >&2
	exit 1
fi

step "fixed scratch module: attrinfer and attrtruth both silent"
(cd "$SCRATCH" && $GO run ./cmd/xmem-vet -run attrinfer,attrtruth ./...)

step "idempotency: -fix-dry on the fixed tree prints no edits"
dry=$(cd "$SCRATCH" && $GO run ./cmd/xmem-vet -run attrinfer -fix-dry ./...)
if [ -n "$dry" ]; then
	echo "infer-validate: fix application is not idempotent:" >&2
	printf '%s\n' "$dry" >&2
	exit 1
fi

step "provenance: fixed example is byte-identical to the committed one"
cmp "$SCRATCH/$EXAMPLE" "$ROOT/$EXAMPLE"

step "simulator differential: tiled kernel + synthetic"
(cd "$ROOT" && $GO run ./cmd/xmem-sim -infer-smoke -workload gemm,libq)

step "simulator differential: the inferdemo example checks itself"
(cd "$ROOT" && $GO run ./examples/inferdemo -check > /dev/null)

echo "infer-validate: OK"

#!/bin/sh
# bench_hotpath.sh — record the AMU lookup hot path's cost envelope.
#
# Runs the allocation-audited hot-path benchmarks (ALB hit, ALB miss +
# evict, raw AAM walk, ALB fill, page snapshot), the pre-paged reference
# models (BenchmarkHotRef*, the map-directory AAM + container/list ALB kept
# in refmodel_test.go), and the Figure 4 thrash point end to end, in
# interleaved rounds, and writes BENCH_hotpath.json in the same shape as
# BENCH_span.json: raw ns/op per run, the median, the allocs/op, and a
# summary comparing new-vs-reference medians.
#
# Old and new are measured in the SAME interleaved run on the SAME machine
# (the bench_snapshot.sh idiom): a recorded constant from another session
# cannot gate honestly, because background load shifts every figure. With
# BENCH_HOTPATH_REF_DIR set to a checkout of the pre-paged tree (e.g. a
# `git worktree add` of the previous release), each round additionally runs
# BenchmarkFig4XMemThrash there, so the end-to-end comparison is fresh too.
#
# Gates (exit non-zero on violation):
#   - every *Lookup* benchmark of the NEW path must report 0 allocs/op
#     (steady-state allocation-free lookups; the Ref benchmarks are exempt
#     — allocating on miss is what they are there to demonstrate);
#   - the new miss+evict median must not exceed the reference-model median
#     measured in the same run;
#   - with BENCH_HOTPATH_REF_DIR set, the Fig-4 point must not regress
#     against the reference tree: each round runs the two precompiled test
#     binaries back to back (order alternating by round, so neither tree
#     systematically benefits from its position), and the gate fails only
#     when the MEAN of the per-round paired deltas is both above +2% and
#     more than two standard errors from zero — a drift the host's noise
#     cannot explain. Without a ref dir the summary still reports the
#     drift against the recorded PR 7 baseline (BENCH_span.json,
#     153734954 ns) as information only.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
GO=${GO:-go}
OUT=${BENCH_HOTPATH_OUT:-"$ROOT/BENCH_hotpath.json"}
COUNT=${BENCH_HOTPATH_COUNT:-5}
REF_DIR=${BENCH_HOTPATH_REF_DIR:-}
# PR 7 baseline: median BenchmarkFig4XMemThrash ns/op from BENCH_span.json.
BASELINE_NS=${BENCH_HOTPATH_BASELINE_NS:-153734954}
RAW=$(mktemp /tmp/xmem_bench_hotpath.XXXXXX)
COREBIN=$(mktemp /tmp/xmem_bench_core.XXXXXX)
NEWBIN=$(mktemp /tmp/xmem_bench_new.XXXXXX)
REFBIN=""
trap 'rm -f "$RAW" "$COREBIN" "$NEWBIN" ${REFBIN:+"$REFBIN"}' EXIT

# Precompile the test binaries once: a round then pairs two executions a
# few seconds apart instead of two compile+run cycles, which tightens the
# paired comparison and keeps compile jitter out of the measurements.
echo "== precompiling benchmark binaries"
(cd "$ROOT" && $GO test -c -o "$COREBIN" ./internal/core/)
(cd "$ROOT" && $GO test -c -o "$NEWBIN" .)
if [ -n "$REF_DIR" ]; then
	REFBIN=$(mktemp /tmp/xmem_bench_ref.XXXXXX)
	(cd "$REF_DIR" && $GO test -c -o "$REFBIN" .)
fi

run_micro() {
	"$COREBIN" -test.run xxx -test.bench 'BenchmarkHot' -test.benchmem \
		-test.benchtime 2000000x -test.count 1 | tee -a "$RAW"
}
run_new() {
	"$NEWBIN" -test.run xxx \
		-test.bench 'BenchmarkAMULookup$|BenchmarkFig4XMemThrash' \
		-test.benchmem -test.benchtime 10x -test.count 1 | tee -a "$RAW"
}
run_ref() {
	"$REFBIN" -test.run xxx -test.bench 'BenchmarkFig4XMemThrash' \
		-test.benchmem -test.benchtime 10x -test.count 1 \
		| sed 's/^BenchmarkFig4XMemThrash/BenchmarkRefFig4XMemThrash/' \
		| tee -a "$RAW"
}

# One round runs every benchmark once; rounds interleave so a drifting
# background load biases every case equally. The new/ref pair alternates
# order between rounds so a systematic within-round drift (cache warmth,
# decaying co-tenant load) cannot consistently favor one side.
echo "== $COUNT interleaved rounds of the hot-path benchmarks"
i=0
while [ "$i" -lt "$COUNT" ]; do
	i=$((i + 1))
	echo "== round $i/$COUNT"
	run_micro
	if [ -z "$REF_DIR" ]; then
		run_new
	elif [ $((i % 2)) -eq 1 ]; then
		run_new
		run_ref
	else
		run_ref
		run_new
	fi
done

host="unknown"
if [ -r /proc/cpuinfo ]; then
	host=$(awk -F': ' '/^model name/ { print $2; exit }' /proc/cpuinfo)
fi
host="$host, $($GO env GOOS)/$($GO env GOARCH)"

awk -v date="$(date +%F)" -v host="$host" -v baseline="$BASELINE_NS" \
	-v haveref="$([ -n "$REF_DIR" ] && echo 1 || echo 0)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") {
			vals[name] = vals[name] " " $(i - 1)
			n[name]++
		}
		if ($i == "allocs/op") {
			allocs[name] = $(i - 1) + 0
			seen_allocs[name] = 1
		}
	}
	names[name] = 1
}
function median(name,    m, arr, i, tmp, j, t) {
	m = split(vals[name], arr, " ")
	for (i = 2; i <= m; i++) {        # insertion sort: counts are tiny
		t = arr[i] + 0
		for (j = i - 1; j >= 1 && arr[j] + 0 > t; j--) arr[j + 1] = arr[j]
		arr[j + 1] = t
	}
	return arr[int((m + 1) / 2)] + 0
}
function runs(name,    m, arr, i, s) {
	m = split(vals[name], arr, " ")
	s = ""
	for (i = 1; i <= m; i++) s = s (i > 1 ? ", " : "") arr[i]
	return s
}
function block(name,    s) {
	s = "    \"" name "\": {\n"
	s = s "      \"ns_per_op\": [" runs(name) "],\n"
	s = s "      \"median_ns_per_op\": " median(name)
	if (seen_allocs[name]) s = s ",\n      \"allocs_per_op\": " allocs[name]
	return s "\n    }"
}
END {
	order = "BenchmarkHotAMULookupHit BenchmarkHotAMULookupMissEvict " \
		"BenchmarkHotRefAMULookupHit BenchmarkHotRefAMULookupMissEvict " \
		"BenchmarkHotAAMLookup BenchmarkHotALBFillEvict " \
		"BenchmarkHotPageAtomsInto BenchmarkAMULookup BenchmarkFig4XMemThrash"
	if (haveref) order = order " BenchmarkRefFig4XMemThrash"
	nw = split(order, want, " ")
	for (i = 1; i <= nw; i++) {
		if (!(want[i] in names)) {
			print "bench_hotpath: missing benchmark " want[i] > "/dev/stderr"
			exit 1
		}
	}
	hit = median("BenchmarkHotAMULookupHit")
	refhit = median("BenchmarkHotRefAMULookupHit")
	miss = median("BenchmarkHotAMULookupMissEvict")
	refmiss = median("BenchmarkHotRefAMULookupMissEvict")
	fig4 = median("BenchmarkFig4XMemThrash")
	hitpct = 100 * (hit - refhit) / refhit
	misspct = 100 * (miss - refmiss) / refmiss
	printf "{\n"
	printf "  \"description\": \"AMU lookup hot-path snapshot: allocation-audited micro-benchmarks (ALB hit, ALB miss+evict, raw AAM walk, ALB fill, page snapshot) plus the Figure 4 thrash point end to end, measured against the pre-paged reference models (BenchmarkHotRef*) in the same interleaved run. The paged-AAM + index-LRU layout keeps every lookup at 0 allocs/op. Regenerate with: make bench-hotpath (set BENCH_HOTPATH_REF_DIR to a pre-paged checkout for the fresh end-to-end comparison).\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"host\": \"%s\",\n", host
	printf "  \"benchmarks\": {\n"
	for (i = 1; i <= nw; i++) printf "%s%s\n", block(want[i]), (i < nw ? "," : "")
	printf "  },\n"
	printf "  \"summary\": {\n"
	printf "    \"lookup_hit_vs_ref_pct\": %.1f,\n", hitpct
	printf "    \"lookup_miss_evict_vs_ref_pct\": %.1f,\n", misspct
	if (haveref) {
		reffig4 = median("BenchmarkRefFig4XMemThrash")
		# Pair each round: new and ref run back to back inside a round
		# (order alternating), so the per-round delta cancels background
		# load drift that independent medians would attribute to whichever
		# tree the spike happened to hit. The mean of the paired deltas
		# estimates the true drift; its standard error says how much of it
		# the host noise can explain.
		nn = split(vals["BenchmarkFig4XMemThrash"], newarr, " ")
		nr = split(vals["BenchmarkRefFig4XMemThrash"], refarr, " ")
		rounds = (nn < nr ? nn : nr)
		psum = 0
		for (i = 1; i <= rounds; i++) {
			parr[i] = 100 * (newarr[i] - refarr[i]) / refarr[i]
			psum += parr[i]
		}
		pmean = psum / rounds
		pvar = 0
		for (i = 1; i <= rounds; i++) pvar += (parr[i] - pmean) ^ 2
		pse = rounds > 1 ? sqrt(pvar / (rounds - 1)) / sqrt(rounds) : 0
		printf "    \"fig4_ref_ns_per_op\": %d,\n", reffig4
		printf "    \"fig4_vs_ref_median_pct\": %.1f,\n", 100 * (fig4 - reffig4) / reffig4
		printf "    \"fig4_vs_ref_paired_mean_pct\": %.1f,\n", pmean
		printf "    \"fig4_paired_stderr_pct\": %.1f,\n", pse
	} else {
		printf "    \"fig4_baseline_pr7_ns_per_op\": %d,\n", baseline
		printf "    \"fig4_vs_pr7_baseline_pct_informational\": %.1f,\n", \
			100 * (fig4 - baseline) / baseline
	}
	printf "    \"lookup_allocs_per_op\": %d\n", allocs["BenchmarkHotAMULookupHit"] + allocs["BenchmarkHotAMULookupMissEvict"] + allocs["BenchmarkAMULookup"]
	printf "  }\n"
	printf "}\n"
	bad = 0
	for (name in names) {
		if (name ~ /Lookup/ && name !~ /Ref/ && seen_allocs[name] && allocs[name] != 0) {
			printf "bench_hotpath: %s reports %d allocs/op (want 0)\n", name, allocs[name] > "/dev/stderr"
			bad = 1
		}
	}
	if (miss > refmiss) {
		printf "bench_hotpath: miss+evict median %d exceeds the reference-model median %d (%.1f%%)\n", \
			miss, refmiss, misspct > "/dev/stderr"
		bad = 1
	}
	if (haveref) {
		if (pmean > 2 && pmean > 2 * pse) {
			printf "bench_hotpath: Fig4 paired mean %.1f%% above the reference tree (stderr %.1f%%, limit +2%% and 2 stderr; medians new %d vs ref %d)\n", \
				pmean, pse, fig4, reffig4 > "/dev/stderr"
			bad = 1
		}
	} else {
		printf "bench_hotpath: note: no BENCH_HOTPATH_REF_DIR; Fig4 median %d vs recorded PR 7 baseline %d = %.1f%% (informational, not gated)\n", \
			fig4, baseline, 100 * (fig4 - baseline) / baseline > "/dev/stderr"
	}
	if (bad) exit 1
}
' "$RAW" > "$OUT"

echo "== wrote $OUT"

#!/bin/sh
# bench_snapshot.sh — record the span tracer's overhead envelope.
#
# Runs the Figure 4 thrash point (gemm n96, 256 KiB tile, XMem system)
# through the top-level benchmarks four ways — spans compiled in but
# disabled, 1-in-1000 sampling, 1-in-10 sampling, and the span-less
# BenchmarkFig4XMemThrash reference — and writes BENCH_span.json in the
# same shape as BENCH_obs.json: raw ns/op per run, the median, and a
# summary comparing the disabled case against the reference.
#
# The disabled case is the shipped default; it must stay within 2% of the
# reference (the two configurations differ only by an untaken nil-check
# branch on the access path). Exits non-zero if it does not.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
GO=${GO:-go}
OUT=${BENCH_SNAPSHOT_OUT:-"$ROOT/BENCH_span.json"}
COUNT=${BENCH_SNAPSHOT_COUNT:-5}
BENCHTIME=${BENCH_SNAPSHOT_BENCHTIME:-10x}
RAW=$(mktemp /tmp/xmem_bench_span.XXXXXX)
trap 'rm -f "$RAW"' EXIT

# One round runs every benchmark once; rounds interleave so a drifting
# background load biases all four cases equally instead of penalizing
# whichever benchmark -count scheduling happens to run last.
echo "== $COUNT rounds of go test -bench 'BenchmarkSpan|BenchmarkFig4XMemThrash' -benchtime $BENCHTIME"
i=0
while [ "$i" -lt "$COUNT" ]; do
	i=$((i + 1))
	echo "== round $i/$COUNT"
	(cd "$ROOT" && $GO test -run xxx \
		-bench 'BenchmarkSpan|BenchmarkFig4XMemThrash' \
		-benchtime "$BENCHTIME" -count 1 .) | tee -a "$RAW"
done

host="unknown"
if [ -r /proc/cpuinfo ]; then
	host=$(awk -F': ' '/^model name/ { print $2; exit }' /proc/cpuinfo)
fi
host="$host, $($GO env GOOS)/$($GO env GOARCH)"

awk -v date="$(date +%F)" -v host="$host" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") {
			vals[name] = vals[name] " " $(i - 1)
			n[name]++
		}
	}
}
function median(name,    m, arr, i, tmp, j, t) {
	m = split(vals[name], arr, " ")
	for (i = 2; i <= m; i++) {        # insertion sort: counts are tiny
		t = arr[i] + 0
		for (j = i - 1; j >= 1 && arr[j] + 0 > t; j--) arr[j + 1] = arr[j]
		arr[j + 1] = t
	}
	return arr[int((m + 1) / 2)] + 0
}
function runs(name,    m, arr, i, s) {
	m = split(vals[name], arr, " ")
	s = ""
	for (i = 1; i <= m; i++) s = s (i > 1 ? ", " : "") arr[i]
	return s
}
function block(name, note,    s) {
	s = "    \"" name "\": {\n"
	if (note != "") s = s "      \"note\": \"" note "\",\n"
	s = s "      \"ns_per_op\": [" runs(name) "],\n"
	s = s "      \"median_ns_per_op\": " median(name) "\n    }"
	return s
}
END {
	base = median("BenchmarkFig4XMemThrash")
	dis = median("BenchmarkSpanDisabled")
	s1000 = median("BenchmarkSpan1in1000")
	s10 = median("BenchmarkSpan1in10")
	if (base == 0 || dis == 0 || s1000 == 0 || s10 == 0) {
		print "bench_snapshot: missing benchmark results" > "/dev/stderr"
		exit 1
	}
	dpct = 100 * (dis - base) / base
	p1000 = 100 * (s1000 - dis) / dis
	p10 = 100 * (s10 - dis) / dis
	printf "{\n"
	printf "  \"description\": \"Span-tracer overhead snapshot: Figure 4 thrash point (gemm n96, 256 KiB tile, XMem system) run via the top-level benchmarks. SpanDisabled is the shipped default (tracer compiled in, Config.SpanSample=0, one nil-check on the access path); the sampled rates add Peek-only harvest sweeps per traced access. Regenerate with: make bench-snapshot.\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"host\": \"%s\",\n", host
	printf "  \"benchmarks\": {\n"
	printf "%s,\n", block("BenchmarkFig4XMemThrash", "span-less reference (no SpanSample field set)")
	printf "%s,\n", block("BenchmarkSpanDisabled", "")
	printf "%s,\n", block("BenchmarkSpan1in1000", "")
	printf "%s\n", block("BenchmarkSpan1in10", "")
	printf "  },\n"
	printf "  \"summary\": {\n"
	printf "    \"disabled_vs_baseline_pct\": %.1f,\n", dpct
	printf "    \"sample_1in1000_vs_disabled_pct\": %.1f,\n", p1000
	printf "    \"sample_1in10_vs_disabled_pct\": %.1f\n", p10
	printf "  }\n"
	printf "}\n"
	if (dpct > 2 || dpct < -10) {
		printf "bench_snapshot: SpanDisabled median %d is %.1f%% off the reference %d (limit +2%%)\n", \
			dis, dpct, base > "/dev/stderr"
		exit 1
	}
}
' "$RAW" > "$OUT"

echo "== wrote $OUT"

# XMem reproduction build targets. Everything is stdlib-only Go; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test test-short vet xmem-vet vet-json vet-hotpath \
        infer-validate lint fmtcheck check bench bench-snapshot bench-hotpath \
        alloc-gate race race-multi bench-multi sweep-smoke metrics-smoke \
        trace-smoke experiments experiments-paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# xmem-vet statically checks every XMemLib call site against the Atom
# contract and the declared attributes against provable access shapes (see
# DESIGN.md, "Correctness tooling"). Exits non-zero on any finding.
xmem-vet:
	$(GO) run ./cmd/xmem-vet ./...

# Machine-readable findings for trend tracking: writes the xmem-vet/v1
# schema to results_vet.json (validate with xmem-inspect -vet). The file is
# written even when the run reports findings, so the trend captures them.
vet-json:
	$(GO) run ./cmd/xmem-vet -json ./... > results_vet.json; \
		status=$$?; $(GO) run ./cmd/xmem-inspect -vet results_vet.json; exit $$status

# Static proof of the hot-path contracts: every //xmem:allocfree function
# (the AMU lookup path) must be provably allocation-free and every
# //xmem:statsneutral function (the Peek/span-observer family) provably
# free of stats/counter/LRU mutations, transitively through the call
# graph. The static twin of alloc-gate and TestSpanTimingNeutral; exits
# non-zero on any finding (see DESIGN.md, "Hot-path contracts").
vet-hotpath:
	$(GO) run ./cmd/xmem-vet -run allocfree,statsneutral ./...

# Differential validation of the attrinfer pipeline: the committed tree
# must be inference-clean and a fixer fixed point; re-applying the fixes to
# the preserved pre-fix example in a scratch copy must reproduce the
# committed file byte-for-byte, leave attrtruth silent, and the simulator
# must confirm the inferred annotations help (see scripts/infer_validate.sh).
infer-validate:
	sh scripts/infer_validate.sh

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint = toolchain vet + race-checked metadata-plane tests + xmem-vet
# (machine-readable, schema-validated via vet-json).
lint: vet fmtcheck vet-json
	$(GO) test -race ./internal/core/... ./internal/sim/...

check: build vet test race alloc-gate vet-hotpath metrics-smoke trace-smoke sweep-smoke

# Allocs/op regression gate for the AMU lookup path: AMU.Lookup, Peek, and
# LookupAttributes must be allocation-free in steady state on the ALB-hit,
# miss+evict, and unmapped-page paths (testing.AllocsPerRun == 0). The
# deterministic twin of the bench-hotpath snapshot, cheap enough for every
# check/CI run.
alloc-gate:
	$(GO) test -run 'TestHotPath' -v ./internal/core/

# Record the lookup hot path's cost envelope (BENCH_hotpath.json): the
# allocation-audited micro-benchmarks vs the pre-rewrite reference models
# in the same interleaved run, medians, a 0 allocs/op gate, and — with
# BENCH_HOTPATH_REF_DIR set to a pre-rewrite checkout — a paired,
# significance-tested Fig-4 end-to-end comparison.
bench-hotpath:
	sh scripts/bench_hotpath.sh

# Full race-detector pass over every package (the parallel sweep runner
# is the main concurrent surface).
race:
	$(GO) test -race ./...

# Race-checked determinism gate for the bound–weave parallel scheduler: the
# multicore and bound–weave tests (including the byte-identical-across-
# GOMAXPROCS determinism test) under the race detector. Cheap enough to run
# on every change to internal/sim.
race-multi:
	$(GO) test -race -run 'Multi|BoundWeave|WeaveGuard' -v ./internal/sim/

# Record the bound–weave speedup envelope (BENCH_multi.json): paired
# sequential-vs-parallel co-run walltime, determinism re-check, and — on
# machines with >=8 hardware threads — a >=3x speedup gate.
bench-multi:
	sh scripts/bench_multi.sh

# End-to-end sweep smoke: a tiny 4-point parallel sweep, checkpointed,
# then resumed — the resume must restore every point and print the same
# reports. Exits non-zero on any difference.
sweep-smoke:
	rm -rf /tmp/xmem_sweep_smoke && mkdir -p /tmp/xmem_sweep_smoke
	$(GO) run ./cmd/xmem-sim -workload gemm,2mm,jacobi-2d,syrk -n 64 \
		-parallel 4 -checkpoint /tmp/xmem_sweep_smoke \
		> /tmp/xmem_sweep_smoke/first.txt
	$(GO) run ./cmd/xmem-sim -workload gemm,2mm,jacobi-2d,syrk -n 64 \
		-parallel 4 -checkpoint /tmp/xmem_sweep_smoke -resume \
		> /tmp/xmem_sweep_smoke/resumed.txt
	cmp /tmp/xmem_sweep_smoke/first.txt /tmp/xmem_sweep_smoke/resumed.txt

# End-to-end observability smoke: run a small kernel with metrics on, then
# validate the emitted schema-v1 JSON (both steps exit non-zero on schema
# violations).
metrics-smoke:
	$(GO) run ./cmd/xmem-sim -workload gemm -n 128 -system xmem \
		-metrics /tmp/xmem_metrics_smoke.json -epoch 50000 >/dev/null
	$(GO) run ./cmd/xmem-inspect -validate-metrics /tmp/xmem_metrics_smoke.json

# End-to-end causal-tracing smoke: run the Figure 4 thrash point with span
# sampling on, validate the emitted JSONL stream, and render the explain
# report (every step exits non-zero on malformed output).
trace-smoke:
	$(GO) run ./cmd/xmem-sim -workload gemm -n 96 -tile 262144 -l3 65536 \
		-system xmem -span-sample 50 \
		-span-out /tmp/xmem_trace_smoke.jsonl >/dev/null
	$(GO) run ./cmd/xmem-inspect -validate-spans /tmp/xmem_trace_smoke.jsonl
	$(GO) run ./cmd/xmem-trace explain -i /tmp/xmem_trace_smoke.jsonl >/dev/null

# Record the span tracer's overhead envelope (BENCH_span.json): the Figure
# 4 thrash point with spans disabled vs 1-in-1000 vs 1-in-10 sampling,
# interleaved rounds, medians, and a disabled-vs-reference noise gate.
bench-snapshot:
	sh scripts/bench_snapshot.sh

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure/table at the fast preset (minutes).
experiments:
	$(GO) run ./cmd/xmem-bench -preset fast -exp all -json results_fast.json | tee results_fast.txt
	$(GO) run ./cmd/xmem-bench -preset fast -exp numa | tee results_ext.txt
	$(GO) run ./cmd/xmem-bench -preset fast -exp ablation | tee -a results_ext.txt
	$(GO) run ./cmd/xmem-bench -preset fast -exp corun -kernels gemm,2mm,jacobi-2d | tee -a results_ext.txt

# Table 3 scale (hours).
experiments-paper:
	$(GO) run ./cmd/xmem-bench -preset paper -exp all -json results_paper.json | tee results_paper.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compression
	$(GO) run ./examples/profiling
	$(GO) run ./examples/dramplacement
	$(GO) run ./examples/hashjoin
	$(GO) run ./examples/tiling
	$(GO) run ./examples/inferdemo -check

clean:
	$(GO) clean ./...

// Package xmem_test hosts the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation, at a scale suitable
// for `go test -bench`. The full-scale regeneration lives in cmd/xmem-bench
// (see EXPERIMENTS.md for recorded outputs).
package xmem_test

import (
	"fmt"
	"testing"

	xm "xmem/internal/core"
	"xmem/internal/experiments"
	"xmem/internal/mem"
	"xmem/internal/sim"
	"xmem/internal/workload"
)

// benchPreset is a reduced Mini preset so a single benchmark iteration
// stays under a second.
func benchPreset() experiments.Preset {
	p := experiments.Mini()
	p.UC1N = 96
	p.UC1Tiles = []uint64{8 << 10, 64 << 10, 256 << 10}
	p.UC1L3 = 64 << 10
	p.UC1Kernels = []string{"gemm"}
	p.UC2Scale = 0.04
	p.UC2Workloads = []string{"leslie3d"}
	return p
}

// BenchmarkTable2XMemLibOps measures the cost of the Table 2 library
// operations against a live AMU (CREATE, MAP/UNMAP, ACTIVATE/DEACTIVATE).
func BenchmarkTable2XMemLibOps(b *testing.B) {
	amu := xm.NewAMU(identity{}, xm.AMUConfig{})
	lib := xm.NewLib(amu)
	id := lib.CreateAtom("bench.atom", xm.Attributes{Reuse: 200})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib.AtomMap(id, 0x100000, 64<<10)
		lib.AtomActivate(id)
		lib.AtomDeactivate(id)
		lib.AtomUnmap(id, 0x100000, 64<<10)
	}
}

type identity struct{}

func (identity) Translate(va mem.Addr) (mem.Addr, bool) { return va, true }

// BenchmarkAMULookup measures the §4.2 ATOM_LOOKUP path through the ALB.
// ReportAllocs is part of the hot-path contract: steady state must be 0
// allocs/op (see make alloc-gate and scripts/bench_hotpath.sh).
func BenchmarkAMULookup(b *testing.B) {
	amu := xm.NewAMU(identity{}, xm.AMUConfig{})
	lib := xm.NewLib(amu)
	id := lib.CreateAtom("bench.atom", xm.Attributes{})
	lib.AtomMap(id, 0, 1<<20)
	lib.AtomActivate(id)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		amu.Lookup(mem.Addr(i*64) % (1 << 20))
	}
}

// BenchmarkAtomSegment measures §3.5.2 segment encode+decode round trips.
func BenchmarkAtomSegment(b *testing.B) {
	lib := xm.NewLib(nil)
	for i := 0; i < 64; i++ {
		lib.CreateAtom(string(rune('a'+i%26))+string(rune('0'+i/26)), xm.Attributes{Reuse: uint8(i)})
	}
	atoms := lib.Atoms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := xm.EncodeSegment(atoms)
		if _, err := xm.DecodeSegment(seg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUC1 runs one tiled-kernel simulation per iteration.
func benchUC1(b *testing.B, tile uint64, xmem bool) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: tile})
	cfg := sim.FastConfig(p.UC1L3).WithUseCase1Bandwidth(p.UC1BandwidthPerCore)
	cfg.XMemCache = xmem
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.MustRun(cfg, w)
		if res.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkFig4BaselineThrash and ...XMemThrash are the Figure 4 headline
// point: the over-sized tile on both systems.
func BenchmarkFig4BaselineThrash(b *testing.B) { benchUC1(b, 256<<10, false) }

// BenchmarkFig4XMemThrash is the XMem counterpart.
func BenchmarkFig4XMemThrash(b *testing.B) { benchUC1(b, 256<<10, true) }

// BenchmarkFig4BestTile is the tuned-tile point.
func BenchmarkFig4BestTile(b *testing.B) { benchUC1(b, 8<<10, false) }

// BenchmarkFig5Portability runs the portability sweep (tile tuned for the
// full cache, executed on the quarter cache) for both systems.
func BenchmarkFig5Portability(b *testing.B) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: p.UC1L3 / 2})
	for i := 0; i < b.N; i++ {
		for _, x := range []bool{false, true} {
			cfg := sim.FastConfig(p.UC1L3 / 4).WithUseCase1Bandwidth(p.UC1BandwidthPerCore)
			cfg.XMemCache = x
			sim.MustRun(cfg, w)
		}
	}
}

// BenchmarkFig6LowBandwidth runs the 0.5 GB/s design-point comparison
// (Baseline vs XMem-Pref vs XMem).
func BenchmarkFig6LowBandwidth(b *testing.B) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: 256 << 10})
	for i := 0; i < b.N; i++ {
		for _, mode := range []struct{ pin, pref bool }{{false, false}, {false, true}, {true, false}} {
			cfg := sim.FastConfig(p.UC1L3).WithUseCase1Bandwidth(0.5e9)
			cfg.XMemCache = mode.pin
			cfg.XMemPrefetchOnly = mode.pref
			sim.MustRun(cfg, w)
		}
	}
}

// benchUC2 runs one synthetic workload per iteration.
func benchUC2(b *testing.B, alloc sim.AllocPolicy, ideal bool) {
	p := benchPreset()
	var spec workload.SynthSpec
	for _, s := range workload.Suite27() {
		if s.Name == p.UC2Workloads[0] {
			spec = s.Scaled(p.UC2Scale)
		}
	}
	w := workload.Synthetic(spec)
	cfg := sim.FastConfig(p.UC2L3)
	cfg.Alloc = alloc
	cfg.AllocSeed = 42
	cfg.IdealRBL = ideal
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MustRun(cfg, w)
	}
}

// BenchmarkFig7Baseline is the strengthened-baseline DRAM placement run.
func BenchmarkFig7Baseline(b *testing.B) { benchUC2(b, sim.AllocRandom, false) }

// BenchmarkFig7XMemPlacement is the §6.2 placement run.
func BenchmarkFig7XMemPlacement(b *testing.B) { benchUC2(b, sim.AllocXMemPlacement, false) }

// BenchmarkFig7IdealRBL is the §6.4 upper bound.
func BenchmarkFig7IdealRBL(b *testing.B) { benchUC2(b, sim.AllocRandom, true) }

// BenchmarkFig8ReadLatency reports the Figure 8 metric (normalized read
// latency) as a custom benchmark unit while timing the paired runs.
func BenchmarkFig8ReadLatency(b *testing.B) {
	p := benchPreset()
	var spec workload.SynthSpec
	for _, s := range workload.Suite27() {
		if s.Name == p.UC2Workloads[0] {
			spec = s.Scaled(p.UC2Scale)
		}
	}
	w := workload.Synthetic(spec)
	var norm float64
	for i := 0; i < b.N; i++ {
		base := sim.FastConfig(p.UC2L3)
		base.Alloc = sim.AllocRandom
		base.AllocSeed = 42
		xcfg := base
		xcfg.Alloc = sim.AllocXMemPlacement
		rb := sim.MustRun(base, w)
		rx := sim.MustRun(xcfg, w)
		norm = rx.DRAM.AvgDemandReadLatency() / rb.DRAM.AvgDemandReadLatency()
	}
	b.ReportMetric(norm, "normReadLat")
}

// BenchmarkALBCoverage measures the §4.2 ALB claim while timing the run.
func BenchmarkALBCoverage(b *testing.B) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: 32 << 10})
	cfg := sim.FastConfig(p.UC1L3)
	cfg.XMemCache = true
	var hit float64
	for i := 0; i < b.N; i++ {
		hit = sim.MustRun(cfg, w).ALBHitRate
	}
	b.ReportMetric(100*hit, "ALBhit%")
}

// benchObs runs the Figure 4 thrash point with observability off or on, so
// the pair bounds the obs layer's overhead. With metrics off the hot path
// carries a single nil check; the recorded baseline (BENCH_obs.json) keeps
// the disabled case within noise of the pre-obs build.
func benchObs(b *testing.B, metrics bool) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: 256 << 10})
	cfg := sim.FastConfig(p.UC1L3).WithUseCase1Bandwidth(p.UC1BandwidthPerCore)
	cfg.XMemCache = true
	cfg.Metrics = metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.MustRun(cfg, w)
		if metrics && res.Metrics == nil {
			b.Fatal("no metrics report")
		}
	}
}

// BenchmarkObsDisabled is the default configuration: metrics compiled in
// but off.
func BenchmarkObsDisabled(b *testing.B) { benchObs(b, false) }

// BenchmarkObsEnabled samples every 100k cycles and attributes per-atom.
func BenchmarkObsEnabled(b *testing.B) { benchObs(b, true) }

// BenchmarkOverheadInstructions measures the §4.4 instruction overhead as a
// custom metric.
func BenchmarkOverheadInstructions(b *testing.B) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: 32 << 10})
	cfg := sim.FastConfig(p.UC1L3)
	cfg.XMemCache = true
	var frac float64
	for i := 0; i < b.N; i++ {
		r := sim.MustRun(cfg, w)
		frac = float64(r.Lib.Instructions) / float64(r.Instructions)
	}
	b.ReportMetric(100*frac, "instrOverhead%")
}

// benchSpan runs the Figure 4 thrash point with span tracing off or at a
// sampling rate, so the trio bounds the tracer's overhead (BENCH_span.json
// records a snapshot). Disabled, the hot path carries one nil check per
// access; sampled spans additionally walk the Peek-only harvest sweeps.
func benchSpan(b *testing.B, every uint64) {
	p := benchPreset()
	w := workload.Gemm(workload.TiledConfig{N: p.UC1N, TileBytes: 256 << 10})
	cfg := sim.FastConfig(p.UC1L3).WithUseCase1Bandwidth(p.UC1BandwidthPerCore)
	cfg.XMemCache = true
	cfg.SpanSample = every
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.MustRun(cfg, w)
		if every > 0 && (res.Spans == nil || len(res.Spans.Spans) == 0) {
			b.Fatal("no spans retained")
		}
	}
}

// BenchmarkSpanDisabled is the shipped default: the tracer compiled in but
// off (Config.SpanSample = 0).
func BenchmarkSpanDisabled(b *testing.B) { benchSpan(b, 0) }

// BenchmarkSpan1in1000 traces one in every thousand demand accesses.
func BenchmarkSpan1in1000(b *testing.B) { benchSpan(b, 1000) }

// BenchmarkSpan1in10 is an aggressive rate for interactive debugging runs.
func BenchmarkSpan1in10(b *testing.B) { benchSpan(b, 10) }

// corunBenchWorkload is one DRAM-heavy streaming co-runner: a buffer
// several times the shared L3, streamed repeatedly, so every core misses to
// the shared controller continuously — the worst case for the bound–weave
// scheduler's optimistic bound phase and the best case for its parallelism.
func corunBenchWorkload(idx int, l3 uint64) workload.Workload {
	name := fmt.Sprintf("costream%d", idx)
	lines := int(4 * l3 / mem.LineBytes)
	attrs := xm.Attributes{Pattern: xm.PatternRegular, StrideBytes: mem.LineBytes, Intensity: 150}
	return workload.Workload{
		Name:    name,
		Declare: func(lib *xm.Lib) { lib.CreateAtom(name+".buf", attrs) },
		Run: func(p workload.Program) {
			id := p.Lib().CreateAtom(name+".buf", attrs)
			size := uint64(lines) * mem.LineBytes
			buf := p.Malloc("buf", size, id)
			p.Lib().AtomMap(id, buf, size)
			p.Lib().AtomActivate(id)
			for r := 0; r < 4; r++ {
				for i := 0; i < lines; i++ {
					p.Load(1, buf+mem.Addr(i*mem.LineBytes))
					p.Work(2)
				}
			}
		},
	}
}

// benchCorun8 runs an 8-core co-run of streaming workloads on the selected
// multicore scheduler. scripts/bench_multi.sh pairs the two variants into
// BENCH_multi.json: on a one-thread machine they tie (the bound phase still
// runs its goroutines one at a time); the speedup gate applies from 8
// hardware threads up.
func benchCorun8(b *testing.B, parallel bool) {
	const l3 = 64 << 10
	ws := make([]workload.Workload, 8)
	for i := range ws {
		ws[i] = corunBenchWorkload(i, l3)
	}
	cfg := sim.MultiConfig{Core: sim.FastConfig(l3), Parallel: parallel}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.MustRunMulti(cfg, ws)
		if r.Cycles == 0 || r.DRAM.Reads == 0 {
			b.Fatal("empty co-run result")
		}
	}
}

// BenchmarkCorun8Seq is the serial reference scheduler on the 8-core co-run.
func BenchmarkCorun8Seq(b *testing.B) { benchCorun8(b, false) }

// BenchmarkCorun8BoundWeave is the bound–weave scheduler on the same machine.
func BenchmarkCorun8BoundWeave(b *testing.B) { benchCorun8(b, true) }

// Quickstart: the XMem programming model in isolation.
//
// It walks the Atom lifecycle of §3.2 — CREATE with immutable attributes,
// MAP onto address ranges, ACTIVATE — and then plays the role of a hardware
// component querying the Atom Management Unit for the semantics behind an
// address, exactly the ATOM_LOOKUP flow of §4.2.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	xm "xmem/internal/core"
	"xmem/internal/kernel"
	"xmem/internal/mem"
)

func main() {
	// A process address space: the MMU the AMU translates through.
	as := kernel.NewAddressSpace(kernel.NewSequentialAllocator(64<<20), nil)
	amu := xm.NewAMU(as, xm.AMUConfig{})
	lib := xm.NewLib(amu)

	// CREATE: two atoms with statically-known semantics (compile time).
	hot := lib.CreateAtom("main.hotTile", xm.Attributes{
		Type:        xm.TypeFloat64,
		Pattern:     xm.PatternRegular,
		StrideBytes: 64,
		RW:          xm.ReadOnly,
		Intensity:   220,
		Reuse:       255,
	})
	edges := lib.CreateAtom("main.edgeList", xm.Attributes{
		Type:      xm.TypeInt32,
		Props:     xm.PropIndex | xm.PropSparse,
		Pattern:   xm.PatternIrregular,
		RW:        xm.ReadWrite,
		Intensity: 90,
	})

	// The compiler summarizes the atoms into the program's atom segment;
	// the OS loads it into the Global Attribute Table at exec time.
	segment := lib.Segment()
	atoms, err := xm.DecodeSegment(segment)
	if err != nil {
		panic(err)
	}
	gat := xm.NewGAT()
	gat.LoadAtoms(atoms)
	amu.SetGAT(gat)
	fmt.Printf("atom segment: %d bytes for %d atoms (version %d)\n\n",
		len(segment), len(atoms), xm.SegmentVersion)

	// Allocate data structures (the augmented malloc of §4.1.2 carries
	// the atom ID so the OS knows structure boundaries up front).
	matrix, _ := as.Malloc("matrix", 1<<20, hot)
	edgeList, _ := as.Malloc("edges", 256<<10, edges)

	// MAP + ACTIVATE: a 64KB tile of the matrix, and the whole edge list.
	lib.AtomMap2D(hot, matrix, 2048, 32, 8192) // 32 rows × 2KB in an 8KB-pitch matrix
	lib.AtomActivate(hot)
	lib.AtomMap(edges, edgeList, 256<<10)
	lib.AtomActivate(edges)

	// A hardware component (cache, prefetcher, controller) asks the AMU
	// what an address means.
	query := func(label string, va mem.Addr) {
		pa, _ := as.Translate(va)
		if id, attrs, ok := amu.LookupAttributes(pa); ok {
			fmt.Printf("%-22s -> atom %d (%s)\n", label, id, attrs)
		} else {
			fmt.Printf("%-22s -> no active atom\n", label)
		}
	}
	query("matrix tile row 0", matrix)
	query("matrix tile row 5", matrix+5*8192)
	query("matrix outside tile", matrix+5*8192+4096)
	query("edge list", edgeList+1000)

	// Phase change: the program moves to the next tile. The old mapping
	// is peeled off and the same atom describes the new tile (§3.2).
	lib.AtomUnmap2D(hot, matrix, 2048, 32, 8192)
	lib.AtomMap2D(hot, matrix+2048, 2048, 32, 8192)
	fmt.Println("\nafter remapping the tile atom one tile to the right:")
	query("old tile start", matrix)
	query("new tile start", matrix+2048)

	hits, misses := amu.ALB().Stats()
	fmt.Printf("\nAMU served %d lookups (ALB: %d hits, %d misses); library cost: %d instructions\n",
		amu.Stats().Lookups, hits, misses, lib.Stats().Instructions)
}

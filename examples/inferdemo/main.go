// Inferdemo: static inference closing the semantic gap, end to end.
//
// This example is the second expression channel of §3.5.1 — static
// analysis — made concrete. Its workload is deliberately under-annotated:
// the programmer expressed relative hotness and reuse (the judgement calls
// only a human can make) but left the mechanical attributes — access
// pattern, stride, read/write mix — undeclared, and one allocation has no
// atom at all. Those are exactly the attributes `xmem-vet -run attrinfer`
// proves from the loop nests, and `xmem-vet -fix` writes back into this
// file. The committed version of this file IS the fixed output; the
// pre-fix original is preserved at
// internal/analysis/testdata/inferdemo_prefix/main.go.txt and
// `make infer-validate` re-applies the fixes to it and diffs the result
// against this file, proving the committed annotations are machine-derived.
//
// The program then validates the inference against the simulator the same
// way CI does: it runs itself twice on an XMem machine — once with every
// declared attribute stripped (the unannotated binary) and once as
// declared — and compares L3 hit rate, row-buffer locality, and cycles.
// With -check it exits nonzero when declaring the attributes did not help,
// which would mean the inference mis-steered a policy.
//
// Run with: go run ./examples/inferdemo [-check]
package main

import (
	"flag"
	"fmt"
	"os"

	"xmem/internal/core"
	"xmem/internal/mem"
	"xmem/internal/sim"
	"xmem/internal/workload"
)

const (
	tableElems   = 4 << 10  // 32 KB hash table: hot, heavily reused
	streamElems  = 64 << 10 // 512 KB input stream: scanned once per pass
	logElems     = 16 << 10 // 128 KB append log: write-only
	scratchElems = 8 << 10  // 64 KB scratch: not even an atom (pre-fix)
	passes       = 8
)

// demo builds the under-annotated workload. The Intensity and Reuse values
// are the human's contribution — relative, cross-atom rankings attrinfer
// never invents. Everything else the analyzer proves and fills in.
func demo() workload.Workload {
	return workload.Workload{
		Name: "inferdemo",
		Declare: func(lib *core.Lib) {
			lib.CreateAtom("main.table", core.Attributes{Pattern: core.PatternIrregular, RW: core.ReadOnly, Intensity: 220, Reuse: 200})
			lib.CreateAtom("main.stream", core.Attributes{Pattern: core.PatternRegular, StrideBytes: 8, RW: core.ReadOnly, Intensity: 60})
			lib.CreateAtom("main.log", core.Attributes{Pattern: core.PatternRegular, StrideBytes: 8, RW: core.WriteOnly, Intensity: 20})
		},
		Run: func(p workload.Program) {
			lib := p.Lib()
			table := p.Malloc("table", tableElems*8, lib.CreateAtom("main.table", core.Attributes{Pattern: core.PatternIrregular, RW: core.ReadOnly, Intensity: 220, Reuse: 200}))
			stream := p.Malloc("stream", streamElems*8, lib.CreateAtom("main.stream", core.Attributes{Pattern: core.PatternRegular, StrideBytes: 8, RW: core.ReadOnly, Intensity: 60}))
			log := p.Malloc("log", logElems*8, lib.CreateAtom("main.log", core.Attributes{Pattern: core.PatternRegular, StrideBytes: 8, RW: core.WriteOnly, Intensity: 20}))
			scratch := p.Malloc("scratch", scratchElems*8, p.Lib().CreateAtom("main.scratch", core.Attributes{Pattern: core.PatternRegular, StrideBytes: 8, RW: core.WriteOnly}))
			for pass := 0; pass < passes; pass++ {
				for i := 0; i < streamElems; i++ {
					p.Load(0, stream+mem.Addr(i*8))
					p.Load(1, table+mem.Addr(i*31%tableElems*8))
					p.Work(1)
				}
				for i := 0; i < logElems; i++ {
					p.Store(2, log+mem.Addr(i*8))
				}
				for i := 0; i < scratchElems; i++ {
					p.Store(3, scratch+mem.Addr(i*8))
				}
			}
		},
	}
}

func main() {
	check := flag.Bool("check", false, "exit nonzero unless declaring the attributes helped the memory system")
	flag.Parse()

	fmt.Println("inferdemo: statically inferred annotations vs the unannotated binary")
	fmt.Println()
	fmt.Println("The committed annotations in this file are `xmem-vet -fix` output:")
	fmt.Println("pattern, stride, and read/write mix were proven from the loop nests;")
	fmt.Println("only Intensity and Reuse were written by hand.")
	fmt.Println()

	cfg := sim.FastConfig(256 << 10)
	cfg.Alloc = sim.AllocXMemPlacement
	cfg.AllocSeed = 42
	cfg.XMemCache = true
	r, err := sim.InferSmoke(cfg, demo())
	if err != nil {
		fmt.Fprintf(os.Stderr, "inferdemo: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(r)
	fmt.Println()
	if r.Pass() {
		fmt.Println("expressing the inferred semantics helped: the annotations are safe to ship")
	} else {
		fmt.Println("declaring the attributes made the memory system WORSE: inference mis-steered a policy")
	}
	if *check && !r.Pass() {
		os.Exit(1)
	}
}

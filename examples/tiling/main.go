// Tiling: use case 1 (§5) end to end.
//
// A tiled GEMM tuned for a 256 KB cache runs on machines with 256 KB,
// 128 KB, and 64 KB of L3 — the situation a statically optimized binary
// faces in a virtualized environment or next to co-runners. The Baseline
// (DRRIP + multi-stride prefetcher) thrashes when the tile no longer fits;
// XMem pins what fits and prefetches the rest along the atom's expressed
// pattern, keeping the slowdown small (Figure 5's portability claim).
//
// Run with: go run ./examples/tiling
package main

import (
	"fmt"

	"xmem/internal/sim"
	"xmem/internal/workload"
)

func main() {
	tuned := uint64(256 << 10)
	tile := tuned / 2 // a static optimizer fills about half the cache
	w := workload.Gemm(workload.TiledConfig{N: 256, TileBytes: tile})
	fmt.Printf("gemm 256x256, tile %d KB (tuned for %d KB of L3)\n\n", tile>>10, tuned>>10)
	fmt.Printf("%-8s %15s %15s %10s\n", "L3", "Baseline cycles", "XMem cycles", "XMem gain")

	var refBase uint64
	for _, l3 := range []uint64{tuned, tuned / 2, tuned / 4} {
		base := sim.FastConfig(l3).WithUseCase1Bandwidth(2.1e9)
		xcfg := base
		xcfg.XMemCache = true
		b := sim.MustRun(base, w)
		x := sim.MustRun(xcfg, w)
		if refBase == 0 {
			refBase = b.Cycles
		}
		fmt.Printf("%-8s %15d %15d %9.2fx\n",
			fmt.Sprintf("%dKB", l3>>10), b.Cycles, x.Cycles,
			float64(b.Cycles)/float64(x.Cycles))
	}
	fmt.Println("\nThe last two rows are the portability case: same binary, less cache.")
	fmt.Println("XMem's pinned fraction of the tile keeps hitting while the prefetcher")
	fmt.Println("streams the remainder, so the cliff the Baseline falls off flattens out.")
}

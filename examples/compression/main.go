// Compression: the third use case of Table 1, demonstrated end to end.
//
// A program expresses the data-value properties of four data pools through
// atoms — a sparse matrix, a pointer-based tree, a float field, and an
// integer histogram. The compression-capable cache translates those
// attributes into a per-atom algorithm choice (its private attribute
// table) and compresses each pool accordingly. A conventional design must
// pick ONE algorithm for everything; XMem's per-pool selection wins on
// every pool simultaneously.
//
// Run with: go run ./examples/compression
package main

import (
	"fmt"

	"xmem/internal/compress"
	xm "xmem/internal/core"
)

func main() {
	lib := xm.NewLib(nil)
	pools := []struct {
		site  string
		attrs xm.Attributes
	}{
		{"sparseMatrix", xm.Attributes{Type: xm.TypeFloat64, Props: xm.PropSparse}},
		{"treeNodes", xm.Attributes{Type: xm.TypeInt64, Props: xm.PropPointer}},
		{"velocityField", xm.Attributes{Type: xm.TypeFloat64}},
		{"histogram", xm.Attributes{Type: xm.TypeInt64}},
	}
	for _, p := range pools {
		lib.CreateAtom(p.site, p.attrs)
	}

	// Program load: GAT from the atom segment, then the compression PAT.
	atoms, err := xm.DecodeSegment(lib.Segment())
	if err != nil {
		panic(err)
	}
	gat := xm.NewGAT()
	gat.LoadAtoms(atoms)
	pat := compress.Translate(gat)

	fmt.Printf("%-15s %-10s %8s %8s %8s %8s   %s\n",
		"pool", "advised", "none", "zero-run", "BDI", "FP-delta", "(compression ratios)")
	totals := map[compress.Algorithm]float64{}
	advisedTotal := 0.0
	for i, p := range pools {
		id := atoms[i].ID
		data := compress.SynthPool(p.attrs, 256<<10, uint64(i+1))
		rep := compress.Analyze(p.attrs, data)
		fmt.Printf("%-15s %-10s %8.2f %8.2f %8.2f %8.2f\n",
			p.site, pat.Lookup(id),
			rep.Ratio[compress.None], rep.Ratio[compress.ZeroRun],
			rep.Ratio[compress.BDI], rep.Ratio[compress.FPDelta])
		for alg, r := range rep.Ratio {
			totals[alg] += r
		}
		advisedTotal += rep.AdvisedRatio
	}
	fmt.Printf("\nsummed ratio with one global algorithm: zero-run %.2f, BDI %.2f, FP-delta %.2f\n",
		totals[compress.ZeroRun], totals[compress.BDI], totals[compress.FPDelta])
	fmt.Printf("summed ratio with per-atom selection:   %.2f\n", advisedTotal)
}

// Hash join: the database example §5.1 opens with. A radix-partitioned
// hash join sizes each partition's hash table to fit the cache — a static
// tuning decision exactly like tile-size selection. When the cache turns
// out smaller than the code assumed (virtualization, co-runners), probes
// thrash; XMem's pinned-atom expression of the hash table keeps the hot
// part resident and rides out the difference.
//
// Run with: go run ./examples/hashjoin
package main

import (
	"fmt"

	"xmem/internal/sim"
	"xmem/internal/workload"
)

func main() {
	tuned := uint64(256 << 10)
	w := workload.HashJoin(workload.HashJoinConfig{
		BuildRows:      120_000,
		ProbeRows:      600_000,
		PartitionBytes: tuned / 2, // table sized to half the expected cache
	})
	fmt.Printf("partitioned hash join, table partition tuned for a %d KB cache\n\n", tuned>>10)
	fmt.Printf("%-8s %15s %15s %10s\n", "L3", "Baseline cycles", "XMem cycles", "speedup")
	for _, l3 := range []uint64{tuned, tuned / 2, tuned / 4} {
		base := sim.FastConfig(l3).WithUseCase1Bandwidth(2.1e9)
		xcfg := base
		xcfg.XMemCache = true
		b := sim.MustRun(base, w)
		x := sim.MustRun(xcfg, w)
		fmt.Printf("%-8s %15d %15d %9.2fx\n",
			fmt.Sprintf("%dKB", l3>>10), b.Cycles, x.Cycles,
			float64(b.Cycles)/float64(x.Cycles))
	}
}

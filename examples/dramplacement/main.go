// DRAM placement: use case 2 (§6) end to end, software-only.
//
// A workload with three hot sequential arrays and an irregular structure
// runs under three OS placements:
//
//   - the strengthened baseline: randomized virtual-to-physical mapping;
//   - XMem placement: the OS reads the atom segment, isolates the
//     high-row-buffer-locality arrays in dedicated banks, and spreads the
//     irregular structure across the remaining banks (§6.2);
//   - the ideal-RBL upper bound (§6.4).
//
// Run with: go run ./examples/dramplacement
package main

import (
	"fmt"

	"xmem/internal/core"
	"xmem/internal/kernel"
	"xmem/internal/mem"
	"xmem/internal/sim"
	"xmem/internal/workload"
)

func main() {
	spec := workload.SynthSpec{
		Name: "demo",
		Structs: []workload.StructSpec{
			{Name: "u", SizeBytes: 4 << 20, Pattern: core.PatternRegular,
				StrideBytes: mem.LineBytes, Intensity: 160, RW: core.ReadWrite, WritePct: 10},
			{Name: "v", SizeBytes: 4 << 20, Pattern: core.PatternRegular,
				StrideBytes: mem.LineBytes, Intensity: 140, RW: core.ReadOnly},
			{Name: "w", SizeBytes: 4 << 20, Pattern: core.PatternRegular,
				StrideBytes: mem.LineBytes, Intensity: 120, RW: core.ReadOnly},
			{Name: "idx", SizeBytes: 2 << 20, Pattern: core.PatternIrregular,
				Intensity: 60, RW: core.ReadOnly},
		},
		Accesses: 150000,
		WorkPer:  6,
	}
	w := workload.Synthetic(spec)

	// Show what the OS decides from the atom segment alone.
	lib := core.NewLib(nil)
	w.Declare(lib)
	placement := kernel.NewXMemPlacement(lib.Atoms(), 8)
	fmt.Println("§6.2 placement decision (8 bank groups):")
	for _, a := range lib.Atoms() {
		fmt.Printf("  %-10s -> banks %v\n", a.Name, placement.PreferredBanks(a.ID))
	}
	fmt.Println()

	run := func(label string, alloc sim.AllocPolicy, ideal bool) sim.Result {
		cfg := sim.FastConfig(256 << 10)
		cfg.Alloc = alloc
		cfg.AllocSeed = 42
		cfg.IdealRBL = ideal
		r := sim.MustRun(cfg, w)
		fmt.Printf("%-18s cycles=%10d  row-hit=%5.1f%%  read latency=%5.0f cycles\n",
			label, r.Cycles, 100*r.DRAM.RowHitRate(), r.DRAM.AvgDemandReadLatency())
		return r
	}
	base := run("baseline (random)", sim.AllocRandom, false)
	xmem := run("XMem placement", sim.AllocXMemPlacement, false)
	ideal := run("ideal RBL bound", sim.AllocRandom, true)

	fmt.Printf("\nXMem speedup: %.2fx (ideal bound: %.2fx)\n",
		float64(base.Cycles)/float64(xmem.Cycles),
		float64(base.Cycles)/float64(ideal.Cycles))
}

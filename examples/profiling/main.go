// Profiling: the third expression channel of §3.5.1, end to end.
//
// The paper lists three ways atoms enter a program: programmer annotation,
// static compiler analysis, and dynamic profiling. This example runs the
// profiling path on an UNANNOTATED program:
//
//  1. record the program's memory trace;
//  2. analyze it — infer each data structure's access pattern, read/write
//     behaviour, intensity, and reuse, and emit profiler-derived atoms;
//  3. replay the identical access stream with the inferred atoms attached,
//     on a machine using XMem-based DRAM placement (§6);
//  4. re-run the profile-guided machine with the observability layer on
//     and read the per-atom attribution — the same epoch time series
//     `xmem-sim -metrics run.json -epoch 100000 -atoms-top 20` writes.
//  5. turn on causal span tracing for the same run and explain per atom
//     *why* accesses were slow — the same report `xmem-sim -span-sample
//     100 -span-out run.jsonl` + `xmem-trace explain -i run.jsonl`
//     renders from a recorded stream.
//
// The program never expressed anything itself; the inferred atom segment
// alone recovers most of the placement benefit, and the obs layer shows
// per structure where the remaining misses land.
//
// Experiment sweeps feed the same registry: `xmem-bench -sweep-metrics
// sweeps.json` records one `runner.<sweep>.point_<key>_wall_ns` counter
// per sweep point (plus points_total/points_failed/wall_ns_total per
// sweep), exported as a single-sample schema-v1 report. Reading it is the
// same as step 4 below — `obs.ValidateJSON`, then scan Counters/Values
// for the `runner.` prefix — so per-point timings can be compared across
// runs with the exact tooling used for per-atom attribution.
//
// Run with: go run ./examples/profiling
package main

import (
	"fmt"

	"xmem/internal/core"
	"xmem/internal/mem"
	"xmem/internal/obs"
	"xmem/internal/obs/span"
	"xmem/internal/sim"
	"xmem/internal/trace"
	"xmem/internal/workload"
)

func main() {
	// An "unannotated" program: three structures, no atom calls at all.
	unannotated := workload.Workload{
		Name: "legacy-app",
		Run: func(p workload.Program) {
			// Deliberately untagged (xmem:noinfer): this example exercises
			// the *dynamic* profiling channel, not static inference.
			hot := p.Malloc("hotArray", 4<<20, core.InvalidAtom)  //xmem:noinfer
			idx := p.Malloc("indexHeap", 2<<20, core.InvalidAtom) //xmem:noinfer
			cold := p.Malloc("coldLog", 1<<20, core.InvalidAtom)  //xmem:noinfer
			state := uint64(7)
			for i := 0; i < 120000; i++ {
				p.Load(1, hot+mem.Addr(i%(4<<14))*64) // sequential sweep
				if i%3 == 0 {
					state = state*6364136223846793005 + 1442695040888963407
					p.Load(2, idx+mem.Addr((state>>16)%(2<<14))*64)
				}
				if i%10 == 0 {
					p.Store(3, cold+mem.Addr(i%(1<<14))*64)
				}
				p.Work(5)
			}
		},
	}

	fmt.Println("1. recording the unannotated program...")
	tr := trace.Record(unannotated)
	fmt.Printf("   %d accesses, %d KB footprint\n\n", tr.Accesses(), tr.FootprintBytes()>>10)

	fmt.Println("2. profiling the trace (inferred atom attributes):")
	profile := trace.Analyze(tr)
	atoms := profile.InferAtoms()
	for _, a := range atoms {
		fmt.Printf("   %s\n", a)
	}
	fmt.Println()

	fmt.Println("3. replaying on baseline vs profile-guided XMem placement:")
	run := func(label string, alloc sim.AllocPolicy, w workload.Workload) uint64 {
		cfg := sim.FastConfig(256 << 10)
		cfg.Alloc = alloc
		cfg.AllocSeed = 42
		r := sim.MustRun(cfg, w)
		fmt.Printf("   %-24s cycles=%10d row-hit=%5.1f%% read-lat=%4.0f\n",
			label, r.Cycles, 100*r.DRAM.RowHitRate(), r.DRAM.AvgDemandReadLatency())
		return r.Cycles
	}
	base := run("baseline (random VA->PA)", sim.AllocRandom, trace.Replay("replay", tr))
	prof := run("profile-guided XMem", sim.AllocXMemPlacement, trace.ReplayWithAtoms("replay+atoms", tr, atoms))
	fmt.Printf("\nprofile-guided speedup: %.2fx — with zero source changes\n",
		float64(base)/float64(prof))

	fmt.Println("\n4. same run with the observability layer on (per-atom view):")
	cfg := sim.FastConfig(256 << 10)
	cfg.Alloc = sim.AllocXMemPlacement
	cfg.AllocSeed = 42
	cfg.Metrics = true
	cfg.EpochCycles = 100_000
	// cfg.MetricsOut = "profiling.trace.json" would also write a Perfetto-
	// openable timeline; here we read the report in-process instead.
	r := sim.MustRun(cfg, trace.ReplayWithAtoms("replay+atoms", tr, atoms))
	fmt.Printf("   %d epochs sampled, %d counters (layer.component.metric)\n",
		len(r.Metrics.Samples), len(r.Metrics.Counters))
	fmt.Printf("   %-20s %12s %10s %10s\n", "atom", "demand-miss", "row-hits", "row-miss")
	for _, a := range r.PerAtom {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("atom-%d", a.ID)
		}
		fmt.Printf("   %-20s %12d %10d %10d\n", name, a.DemandMisses, a.RowHits, a.RowMisses)
	}
	cov := obs.AttributionCoverage(r.PerAtom, func(c obs.AtomCounters) uint64 {
		return c.DemandMisses
	})
	fmt.Printf("   attribution coverage: %.0f%% of L3 demand misses\n", 100*cov)

	fmt.Println("\n5. causal spans: why were the slow accesses slow?")
	cfg.Metrics = false
	cfg.SpanSample = 100 // trace one in every 100 demand accesses
	r = sim.MustRun(cfg, trace.ReplayWithAtoms("replay+atoms", tr, atoms))
	fmt.Printf("   %d spans retained (1-in-%d sampling, %d dropped)\n",
		len(r.Spans.Spans), r.Spans.SampleEvery, r.Spans.Dropped)
	// The same grouping `xmem-trace explain` prints: per atom, per path
	// (layer:outcome[reason] chains), costliest first.
	for _, a := range span.Explain(r.Spans.Spans)[:2] {
		name := a.Name
		if name == "" {
			name = "(unattributed)"
		}
		fmt.Printf("   %s — %d spans, p50 %d p99 %d cycles\n", name, a.Count, a.P50, a.P99)
		for _, p := range a.Paths[:min(2, len(a.Paths))] {
			fmt.Printf("     %5d× %s\n", p.Count, p.Path)
		}
	}
}
